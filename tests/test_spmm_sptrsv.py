"""Tests for the multi-vector SpMM and the SpTRSV convenience kernel."""

import numpy as np
import pytest

from repro.core import Alrescha, KernelType
from repro.errors import SimulationError


@pytest.fixture
def spmv_acc(spd_medium):
    return Alrescha.from_matrix(KernelType.SPMV, spd_medium)


class TestSpMM:
    def test_matches_dense_product(self, spmv_acc, spd_medium, rng):
        x = rng.normal(size=(70, 5))
        y, _report = spmv_acc.run_spmm(x)
        np.testing.assert_allclose(y, spd_medium @ x, atol=1e-9)

    def test_single_column_matches_spmv(self, spmv_acc, rng):
        x = rng.normal(size=70)
        y_mm, _ = spmv_acc.run_spmm(x)
        y_mv, _ = spmv_acc.run_spmv(x)
        np.testing.assert_allclose(y_mm[:, 0], y_mv)

    def test_matrix_streams_once(self, spmv_acc, rng):
        """The panel amortises the payload: k columns stream the matrix
        once, not k times."""
        x1 = rng.normal(size=(70, 1))
        x8 = rng.normal(size=(70, 8))
        _y, r1 = spmv_acc.run_spmm(x1)
        _y, r8 = spmv_acc.run_spmm(x8)
        payload1 = r1.counters.get("dram_bytes")
        payload8 = r8.counters.get("dram_bytes")
        # Write-back grows with k but the dominant matrix payload does
        # not: total DRAM bytes grow far slower than 8x.
        assert payload8 < 2.5 * payload1

    def test_throughput_per_column_improves(self, spmv_acc, rng):
        x1 = rng.normal(size=(70, 1))
        x8 = rng.normal(size=(70, 8))
        _y, r1 = spmv_acc.run_spmm(x1)
        _y, r8 = spmv_acc.run_spmm(x8)
        per_col_1 = r1.cycles
        per_col_8 = r8.cycles / 8.0
        assert per_col_8 < per_col_1

    def test_wide_panel_becomes_compute_bound(self, spmv_acc, rng):
        """At large k the ALU row is the limit: cycles grow ~linearly
        in k once compute dominates."""
        _y, r8 = spmv_acc.run_spmm(rng.normal(size=(70, 8)))
        _y, r16 = spmv_acc.run_spmm(rng.normal(size=(70, 16)))
        assert r16.cycles > 1.5 * r8.cycles / 2.0  # superlinear vs /2

    def test_shape_validation(self, spmv_acc):
        with pytest.raises(SimulationError):
            spmv_acc.run_spmm(np.zeros((5, 2)))

    def test_wrong_kernel_rejected(self, spd_medium):
        acc = Alrescha.from_matrix(KernelType.SYMGS, spd_medium)
        with pytest.raises(SimulationError):
            acc.run_spmm(np.zeros((70, 2)))


class TestSpTRSV:
    def test_solves_lower_triangle(self, spd_medium, rng):
        acc = Alrescha.from_matrix(KernelType.SYMGS, spd_medium)
        b = rng.normal(size=70)
        x, report = acc.run_sptrsv(b)
        lower = np.tril(spd_medium)
        np.testing.assert_allclose(lower @ x, b, atol=1e-8)
        assert report.kernel == "sptrsv"

    def test_matches_scipy_triangular_solve(self, banded_spd, rng):
        import scipy.linalg
        acc = Alrescha.from_matrix(KernelType.SYMGS, banded_spd)
        b = rng.normal(size=40)
        x, _ = acc.run_sptrsv(b)
        expected = scipy.linalg.solve_triangular(
            np.tril(banded_spd), b, lower=True)
        np.testing.assert_allclose(x, expected, atol=1e-9)

    def test_sequential_work_reported(self, spd_medium, rng):
        acc = Alrescha.from_matrix(KernelType.SYMGS, spd_medium)
        _x, report = acc.run_sptrsv(rng.normal(size=70))
        assert report.sequential_cycles > 0
