"""Shared fixtures: small deterministic matrices and graphs."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def make_spd_dense(n: int, density: float = 0.15,
                   seed: int = 0) -> np.ndarray:
    """Small dense SPD matrix with a sparse off-diagonal pattern."""
    gen = np.random.default_rng(seed)
    a = np.zeros((n, n))
    nnz = max(1, int(density * n * n))
    i = gen.integers(0, n, size=nnz)
    j = gen.integers(0, n, size=nnz)
    a[i, j] = gen.normal(size=nnz)
    a = (a + a.T) / 2.0
    np.fill_diagonal(a, 0.0)
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    return a


@pytest.fixture
def spd_small() -> np.ndarray:
    """17x17 SPD matrix (odd size to exercise block padding)."""
    return make_spd_dense(17, density=0.2, seed=3)


@pytest.fixture
def spd_medium() -> np.ndarray:
    """70x70 SPD matrix spanning multiple block rows."""
    return make_spd_dense(70, density=0.08, seed=5)


@pytest.fixture
def banded_spd() -> np.ndarray:
    """Banded SPD matrix (diagonal-heavy structure)."""
    n = 40
    a = np.zeros((n, n))
    for k in range(1, 4):
        idx = np.arange(n - k)
        a[idx, idx + k] = -1.0
        a[idx + k, idx] = -1.0
    np.fill_diagonal(a, 7.0)
    return a


@pytest.fixture
def small_digraph() -> sp.csr_matrix:
    """A 12-node weighted directed graph with known shortest paths."""
    edges = [
        (0, 1, 2.0), (0, 2, 5.0), (1, 2, 1.0), (1, 3, 4.0),
        (2, 3, 1.0), (3, 4, 3.0), (2, 5, 7.0), (4, 5, 1.0),
        (5, 6, 2.0), (6, 7, 2.0), (4, 8, 6.0), (8, 9, 1.0),
        (9, 10, 1.0), (7, 11, 3.0), (10, 11, 2.0), (0, 8, 9.0),
    ]
    rows = [e[0] for e in edges]
    cols = [e[1] for e in edges]
    vals = [e[2] for e in edges]
    return sp.coo_matrix((vals, (rows, cols)), shape=(12, 12)).tocsr()


@pytest.fixture
def random_digraph() -> sp.csr_matrix:
    """Random 60-node directed graph with positive weights."""
    gen = np.random.default_rng(11)
    n, nnz = 60, 300
    rows = gen.integers(0, n, size=nnz)
    cols = gen.integers(0, n, size=nnz)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    vals = gen.uniform(1.0, 5.0, size=rows.size)
    m = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    m.sum_duplicates()
    return m
