"""Unit tests for the configuration table (§4.1)."""

import pytest

from repro.core import (
    AccessOrder,
    ConfigEntry,
    ConfigTable,
    DataPathType,
    KernelType,
    NO_CACHE_WRITE,
    OperandPort,
)
from repro.errors import ConfigError


def entry(dp=DataPathType.GEMV, inx_in=0, inx_out=0,
          order=AccessOrder.L2R, op=OperandPort.PORT1, row=0, col=0):
    return ConfigEntry(dp, inx_in, inx_out, order, op, row, col)


class TestKernelMapping:
    @pytest.mark.parametrize("kernel,dp", [
        (KernelType.SPMV, DataPathType.GEMV),
        (KernelType.SYMGS, DataPathType.D_SYMGS),
        (KernelType.BFS, DataPathType.D_BFS),
        (KernelType.SSSP, DataPathType.D_SSSP),
        (KernelType.PAGERANK, DataPathType.D_PR),
    ])
    def test_table1_datapath_column(self, kernel, dp):
        assert kernel.datapath is dp

    def test_only_dsymgs_is_dependent(self):
        for dp in DataPathType:
            assert dp.is_dependent == (dp is DataPathType.D_SYMGS)


class TestEntryValidation:
    def test_negative_inx_in_rejected(self):
        with pytest.raises(ConfigError):
            entry(inx_in=-1)

    def test_no_cache_write_sentinel_allowed(self):
        assert entry(inx_out=NO_CACHE_WRITE).inx_out == -1

    def test_invalid_inx_out_rejected(self):
        with pytest.raises(ConfigError):
            entry(inx_out=-2)


class TestBitBudget:
    def test_entry_bits_formula(self):
        """Each row costs 2*ceil(log2(n/omega)) + 3 bits (§4.1)."""
        table = ConfigTable(n=64, omega=8)  # 8 block rows -> 3 bits each
        assert table.entry_bits() == 2 * 3 + 3

    def test_entry_bits_paper_example(self):
        # Figure 8's example: n = 9, omega = 3 -> 3 block rows -> 2 bits.
        table = ConfigTable(n=9, omega=3)
        assert table.entry_bits() == 2 * 2 + 3

    def test_total_bits(self):
        table = ConfigTable(n=64, omega=8)
        table.add(entry())
        table.add(entry(row=1))
        assert table.total_bits() == 2 * table.entry_bits()

    def test_single_block_row(self):
        table = ConfigTable(n=8, omega=8)
        assert table.entry_bits() == 2 * 1 + 3

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigError):
            ConfigTable(n=0, omega=8)
        with pytest.raises(ConfigError):
            ConfigTable(n=8, omega=0)


class TestTableAnalysis:
    def test_switch_count(self):
        table = ConfigTable(n=32, omega=8)
        table.add(entry(dp=DataPathType.GEMV))
        table.add(entry(dp=DataPathType.GEMV))
        table.add(entry(dp=DataPathType.D_SYMGS))
        table.add(entry(dp=DataPathType.GEMV))
        assert table.switch_count() == 2

    def test_no_switches_single_type(self):
        table = ConfigTable(n=32, omega=8)
        for i in range(4):
            table.add(entry(row=i))
        assert table.switch_count() == 0

    def test_dependent_fraction(self):
        table = ConfigTable(n=32, omega=8)
        table.add(entry(dp=DataPathType.GEMV))
        table.add(entry(dp=DataPathType.D_SYMGS))
        assert table.dependent_fraction() == pytest.approx(0.5)

    def test_datapath_counts(self):
        table = ConfigTable(n=32, omega=8)
        table.add(entry(dp=DataPathType.GEMV))
        table.add(entry(dp=DataPathType.GEMV))
        table.add(entry(dp=DataPathType.D_SYMGS))
        counts = table.datapath_counts()
        assert counts[DataPathType.GEMV] == 2
        assert counts[DataPathType.D_SYMGS] == 1

    def test_iteration_and_indexing(self):
        table = ConfigTable(n=32, omega=8)
        e = entry()
        table.add(e)
        assert len(table) == 1
        assert table[0] is e
        assert list(table) == [e]

    def test_empty_table_fraction(self):
        assert ConfigTable(n=8, omega=8).dependent_fraction() == 0.0
