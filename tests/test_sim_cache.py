"""Unit tests for the RCU local cache model."""

import pytest

from repro.errors import SimulationError
from repro.sim import LocalCache


class TestGeometry:
    def test_table5_defaults(self):
        c = LocalCache()
        assert c.size_bytes == 1024
        assert c.line_bytes == 64
        assert c.hit_latency == 4
        assert c.n_lines == 16
        assert c.elements_per_line == 8

    def test_invalid_geometry(self):
        with pytest.raises(SimulationError):
            LocalCache(size_bytes=100, line_bytes=64)
        with pytest.raises(SimulationError):
            LocalCache(size_bytes=0)
        with pytest.raises(SimulationError):
            LocalCache(ways=3)  # 16 lines not divisible into 3-way sets


class TestHitMiss:
    def test_first_access_misses(self):
        c = LocalCache()
        cost = c.read("x", 0)
        assert cost == pytest.approx(c.miss_latency)
        assert c.counters.get("cache_misses") == 1.0

    def test_second_access_hits(self):
        c = LocalCache()
        c.read("x", 0)
        cost = c.read("x", 3)  # same line (elements 0-7)
        assert cost == pytest.approx(c.hit_latency)
        assert c.counters.get("cache_hits") == 1.0

    def test_chunk_within_line_is_one_access(self):
        c = LocalCache()
        c.read("x", 0, count=8)
        assert c.counters.get("cache_reads") == 1.0

    def test_chunk_spanning_lines(self):
        c = LocalCache()
        c.read("x", 4, count=8)  # elements 4..11 touch lines 0 and 1
        assert c.counters.get("cache_reads") == 2.0

    def test_spaces_do_not_alias(self):
        c = LocalCache()
        c.read("x", 0)
        c.read("y", 0)
        assert c.counters.get("cache_misses") == 2.0

    def test_hit_rate(self):
        c = LocalCache()
        c.read("x", 0)
        c.read("x", 0)
        c.read("x", 0)
        assert c.hit_rate == pytest.approx(2.0 / 3.0)


class TestEvictions:
    def test_capacity_eviction(self):
        c = LocalCache(size_bytes=128, line_bytes=64, ways=2)  # 2 lines
        c.read("x", 0)    # line 0
        c.read("x", 8)    # line 1
        c.read("x", 16)   # line 2 -> evicts
        assert c.counters.get("cache_evictions") >= 1.0

    def test_dirty_eviction_writes_back(self):
        c = LocalCache(size_bytes=128, line_bytes=64, ways=2)
        c.write("x", 0)
        c.write("x", 8)
        c.write("x", 16)
        assert c.counters.get("cache_writebacks") >= 1.0

    def test_lru_order(self):
        c = LocalCache(size_bytes=128, line_bytes=64, ways=2)
        c.read("x", 0)     # A
        c.read("x", 8)     # B
        c.read("x", 0)     # touch A -> B is LRU
        c.read("x", 16)    # evicts B
        assert c.read("x", 0) == pytest.approx(c.hit_latency)  # A still hot


class TestFlushAndErrors:
    def test_flush_drops_lines_keeps_counters(self):
        c = LocalCache()
        c.read("x", 0)
        c.flush()
        assert c.read("x", 0) == pytest.approx(c.miss_latency)
        assert c.counters.get("cache_reads") == 2.0

    def test_reset_clears_counters(self):
        c = LocalCache()
        c.read("x", 0)
        c.reset()
        assert c.counters.get("cache_reads") == 0.0

    def test_zero_count_rejected(self):
        with pytest.raises(SimulationError):
            LocalCache().read("x", 0, count=0)
