"""Tests for the graph data-path passes on the accelerator."""

import numpy as np
import pytest

from repro.core import Alrescha, KernelType


def _transpose_unit(adj):
    at = adj.T.tocsr().copy()
    at.data = np.ones_like(at.data)
    return at


class TestBFSPass:
    def test_single_pass_expands_one_level(self, small_digraph):
        acc = Alrescha.from_matrix(KernelType.BFS,
                                   _transpose_unit(small_digraph))
        dist = np.full(12, np.inf)
        dist[0] = 0.0
        new, _ = acc.run_bfs_pass(dist)
        # Direct successors of 0 are 1, 2, 8.
        assert new[1] == 1.0
        assert new[2] == 1.0
        assert new[8] == 1.0
        assert np.isinf(new[4])

    def test_pass_is_monotone(self, random_digraph, rng):
        acc = Alrescha.from_matrix(KernelType.BFS,
                                   _transpose_unit(random_digraph))
        dist = np.full(60, np.inf)
        dist[0] = 0.0
        for _ in range(4):
            new, _ = acc.run_bfs_pass(dist)
            assert (new <= dist).all()
            dist = new

    def test_report_has_min_datapath(self, small_digraph):
        acc = Alrescha.from_matrix(KernelType.BFS,
                                   _transpose_unit(small_digraph))
        dist = np.full(12, np.inf)
        dist[0] = 0.0
        _new, report = acc.run_bfs_pass(dist)
        assert "d-bfs" in report.datapath_cycles
        assert report.cycles > 0


class TestSSSPPass:
    def test_single_pass_relaxes_weighted_edges(self, small_digraph):
        acc = Alrescha.from_matrix(KernelType.SSSP,
                                   small_digraph.T.tocsr())
        dist = np.full(12, np.inf)
        dist[0] = 0.0
        new, _ = acc.run_sssp_pass(dist)
        assert new[1] == pytest.approx(2.0)
        assert new[2] == pytest.approx(5.0)
        assert new[8] == pytest.approx(9.0)

    def test_second_pass_improves_paths(self, small_digraph):
        acc = Alrescha.from_matrix(KernelType.SSSP,
                                   small_digraph.T.tocsr())
        dist = np.full(12, np.inf)
        dist[0] = 0.0
        dist, _ = acc.run_sssp_pass(dist)
        dist, _ = acc.run_sssp_pass(dist)
        # 0 -> 1 -> 2 costs 3, better than direct 5.
        assert dist[2] == pytest.approx(3.0)


class TestPRPass:
    def test_contrib_matches_matrix_product(self, random_digraph, rng):
        structure = random_digraph.copy()
        structure.data = np.ones_like(structure.data)
        acc = Alrescha.from_matrix(KernelType.PAGERANK,
                                   structure.T.tocsr())
        n = 60
        outdeg = np.asarray(structure.sum(axis=1)).ravel().astype(float)
        rank = rng.uniform(0.1, 1.0, size=n)
        contrib, _ = acc.run_pr_pass(rank, outdeg)
        share = np.where(outdeg > 0, rank / np.where(outdeg > 0, outdeg, 1),
                         0.0)
        expected = structure.T.tocsr() @ share
        np.testing.assert_allclose(contrib, expected, atol=1e-12)

    def test_pr_pass_counts_pe_updates(self, small_digraph):
        structure = small_digraph.copy()
        structure.data = np.ones_like(structure.data)
        acc = Alrescha.from_matrix(KernelType.PAGERANK,
                                   structure.T.tocsr())
        outdeg = np.asarray(structure.sum(axis=1)).ravel().astype(float)
        _c, report = acc.run_pr_pass(np.full(12, 1 / 12), outdeg)
        assert report.counters.get("pe_op") > 0
