"""Unit tests for the ELL and DIA formats."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix, DIAMatrix, ELLMatrix, PAD


class TestELLConstruction:
    def test_round_trip(self, spd_small):
        ell = ELLMatrix.from_dense(spd_small)
        np.testing.assert_allclose(ell.to_dense(), spd_small)

    def test_width_is_max_row(self):
        dense = np.zeros((3, 5))
        dense[0, :3] = 1.0
        dense[1, 0] = 1.0
        ell = ELLMatrix.from_dense(dense)
        assert ell.width == 3

    def test_padding_ratio(self):
        dense = np.zeros((2, 4))
        dense[0, :4] = 1.0   # full row
        dense[1, 0] = 1.0    # 1 of 4 slots used
        ell = ELLMatrix.from_dense(dense)
        assert ell.padding_ratio == pytest.approx(3.0 / 8.0)

    def test_empty_matrix(self):
        ell = ELLMatrix.from_dense(np.zeros((3, 3)))
        assert ell.width == 0
        assert ell.nnz == 0
        assert ell.padding_ratio == 0.0

    def test_validation(self):
        with pytest.raises(FormatError):
            ELLMatrix((2, 2), np.zeros((3, 1), dtype=np.int64),
                      np.zeros((3, 1)))
        with pytest.raises(FormatError):
            ELLMatrix((2, 2), np.full((2, 1), 9, dtype=np.int64),
                      np.ones((2, 1)))


class TestELLOperations:
    def test_spmv(self, spd_medium, rng):
        ell = ELLMatrix.from_dense(spd_medium)
        x = rng.normal(size=spd_medium.shape[1])
        np.testing.assert_allclose(ell.spmv(x), spd_medium @ x)

    def test_metadata_counts_padding(self):
        dense = np.zeros((2, 4))
        dense[0, :4] = 1.0
        dense[1, 0] = 1.0
        ell = ELLMatrix.from_dense(dense)
        # 8 slots x 2 bits each (4 columns).
        assert ell.metadata_bits() == 8 * 2

    def test_pad_marker(self):
        dense = np.zeros((2, 2))
        dense[0, 0] = 1.0
        dense[0, 1] = 1.0
        ell = ELLMatrix.from_dense(dense)
        assert (ell.col_index[1] == PAD).all()


class TestDIAConstruction:
    def test_round_trip_banded(self, banded_spd):
        dia = DIAMatrix.from_dense(banded_spd)
        np.testing.assert_allclose(dia.to_dense(), banded_spd)

    def test_round_trip_scattered(self, spd_small):
        dia = DIAMatrix.from_dense(spd_small)
        np.testing.assert_allclose(dia.to_dense(), spd_small)

    def test_n_diagonals_banded(self, banded_spd):
        dia = DIAMatrix.from_dense(banded_spd)
        assert dia.n_diagonals == 7  # main + 3 each side

    def test_empty(self):
        dia = DIAMatrix.from_dense(np.zeros((3, 3)))
        assert dia.n_diagonals == 0
        assert dia.nnz == 0

    def test_validation_duplicate_offsets(self):
        with pytest.raises(FormatError):
            DIAMatrix((3, 3), np.array([0, 0]), np.zeros((2, 3)))

    def test_validation_shape(self):
        with pytest.raises(FormatError):
            DIAMatrix((3, 3), np.array([0]), np.zeros((2, 3)))


class TestDIAOperations:
    def test_spmv_banded(self, banded_spd, rng):
        dia = DIAMatrix.from_dense(banded_spd)
        x = rng.normal(size=banded_spd.shape[1])
        np.testing.assert_allclose(dia.spmv(x), banded_spd @ x)

    def test_spmv_rectangularish_offsets(self, rng):
        dense = np.zeros((5, 5))
        dense[0, 4] = 2.0   # offset +4
        dense[4, 0] = 3.0   # offset -4
        dia = DIAMatrix.from_dense(dense)
        x = rng.normal(size=5)
        np.testing.assert_allclose(dia.spmv(x), dense @ x)

    def test_metadata_tiny_for_banded(self, banded_spd):
        dia = DIAMatrix.from_dense(banded_spd)
        # One offset per diagonal only: far below one bit per nnz.
        assert dia.metadata_bits_per_nnz() < 1.0

    def test_stored_slots_include_in_diagonal_padding(self, banded_spd):
        dia = DIAMatrix.from_dense(banded_spd)
        assert dia.stored_slots >= dia.nnz
