"""Tests for the device memory image (the data interface of Figure 7)."""

import numpy as np
import pytest

from repro.core import KernelType, convert, decode_image, encode_image, \
    image_size_bytes
from repro.core.device_image import roundtrip_check
from repro.errors import FormatError
from repro.formats import AlreschaMatrix


class TestRoundTrip:
    def test_plain_layout(self, spd_medium):
        alr = AlreschaMatrix.from_dense(spd_medium, 8)
        decoded = decode_image(encode_image(alr))
        np.testing.assert_array_equal(decoded.to_dense(), spd_medium)
        assert decoded.omega == 8
        assert not decoded.symgs_layout

    def test_symgs_layout(self, spd_medium):
        alr = AlreschaMatrix.from_dense(spd_medium, 8, symgs_layout=True)
        decoded = decode_image(encode_image(alr))
        np.testing.assert_array_equal(decoded.to_dense(), spd_medium)
        np.testing.assert_array_equal(decoded.diagonal, alr.diagonal)
        assert decoded.symgs_layout

    def test_stream_order_preserved(self, spd_medium):
        alr = AlreschaMatrix.from_dense(spd_medium, 8, symgs_layout=True)
        decoded = decode_image(encode_image(alr))
        for a, b in zip(alr.stream(), decoded.stream()):
            assert (a.block_row, a.block_col) == (b.block_row, b.block_col)
            assert a.is_diagonal == b.is_diagonal
            assert a.reversed_cols == b.reversed_cols
            np.testing.assert_array_equal(a.values, b.values)

    def test_roundtrip_check_helper(self, spd_small):
        alr = AlreschaMatrix.from_dense(spd_small, 8, symgs_layout=True)
        exact, diff = roundtrip_check(alr)
        assert exact
        assert diff == 0.0

    def test_size_accounting(self, spd_medium):
        alr = AlreschaMatrix.from_dense(spd_medium, 8)
        blob = encode_image(alr)
        assert len(blob) == image_size_bytes(alr)


class TestExecutionFromImage:
    def test_image_backed_sweep_is_bit_identical(self, spd_medium, rng):
        """(binary, image) fully reconstructs a runnable kernel."""
        from repro.core import Alrescha
        from repro.core.binary import decode_program, encode_program
        from repro.core.convert import ConversionResult

        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        program = encode_program(KernelType.SYMGS, conv.table)
        image = encode_image(conv.matrix)

        kernel, table = decode_program(program)
        matrix = decode_image(image)
        conv2 = ConversionResult(
            kernel=kernel, omega=matrix.omega, table=table,
            matrix=matrix, bcsr=conv.bcsr, reordered=conv.reordered,
        )
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        acc1 = Alrescha()
        acc1.program(conv)
        acc2 = Alrescha()
        acc2.program(conv2)
        x1, _ = acc1.run_symgs_sweep(b, x0)
        x2, _ = acc2.run_symgs_sweep(b, x0)
        np.testing.assert_array_equal(x1, x2)


class TestValidation:
    def test_bad_magic(self, spd_small):
        alr = AlreschaMatrix.from_dense(spd_small, 8)
        blob = bytearray(encode_image(alr))
        blob[0] ^= 0xFF
        with pytest.raises(FormatError):
            decode_image(bytes(blob))

    def test_truncated_header(self):
        with pytest.raises(FormatError):
            decode_image(b"\x41\x4c\x52")

    @pytest.mark.parametrize("cut", [0.3, 0.7, 0.95])
    def test_truncated_body(self, spd_medium, cut):
        alr = AlreschaMatrix.from_dense(spd_medium, 8, symgs_layout=True)
        blob = encode_image(alr)
        with pytest.raises(FormatError):
            decode_image(blob[: int(len(blob) * cut)])
