"""Tests for the host-side compilation toolchain."""

import numpy as np
import pytest

from repro.core import Alrescha, AlreschaConfig, KernelType
from repro.errors import ConfigError
from repro.host import (
    CompiledKernel,
    compile_kernel,
    load_kernel,
    program_accelerator,
)


class TestCompile:
    def test_artifact_metadata(self, spd_medium):
        compiled = compile_kernel(KernelType.SYMGS, spd_medium)
        assert compiled.kernel is KernelType.SYMGS
        assert compiled.n == 70
        assert compiled.omega == 8
        assert compiled.nnz == int(np.count_nonzero(spd_medium))
        assert compiled.total_bytes == len(compiled.program) \
            + len(compiled.image)

    def test_save_and_load_round_trip(self, spd_medium, tmp_path):
        compiled = compile_kernel(KernelType.SPMV, spd_medium)
        prefix = str(tmp_path / "kernel")
        prog_path, img_path = compiled.save(prefix)
        assert prog_path.exists() and img_path.exists()
        loaded = load_kernel(prefix)
        assert loaded.kernel is KernelType.SPMV
        assert loaded.program == compiled.program
        assert loaded.image == compiled.image

    def test_load_missing_artifacts(self, tmp_path):
        with pytest.raises(ConfigError):
            load_kernel(str(tmp_path / "nope"))


class TestProgramAccelerator:
    def test_spmv_bit_identical(self, spd_medium, rng):
        direct = Alrescha.from_matrix(KernelType.SPMV, spd_medium)
        via_bytes = program_accelerator(
            compile_kernel(KernelType.SPMV, spd_medium))
        x = rng.normal(size=70)
        y1, _ = direct.run_spmv(x)
        y2, _ = via_bytes.run_spmv(x)
        np.testing.assert_array_equal(y1, y2)

    def test_symgs_bit_identical(self, spd_medium, rng):
        direct = Alrescha.from_matrix(KernelType.SYMGS, spd_medium)
        via_bytes = program_accelerator(
            compile_kernel(KernelType.SYMGS, spd_medium))
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        x1, _ = direct.run_symgs_sweep(b, x0)
        x2, _ = via_bytes.run_symgs_sweep(b, x0)
        np.testing.assert_array_equal(x1, x2)

    def test_disk_round_trip_runs(self, spd_medium, rng, tmp_path):
        compiled = compile_kernel(KernelType.SPMV, spd_medium)
        compiled.save(str(tmp_path / "k"))
        acc = program_accelerator(load_kernel(str(tmp_path / "k")))
        x = rng.normal(size=70)
        y, report = acc.run_spmv(x)
        np.testing.assert_allclose(y, spd_medium @ x, atol=1e-9)
        assert report.cycles > 0

    def test_metadata_mismatch_detected(self, spd_medium):
        good = compile_kernel(KernelType.SPMV, spd_medium)
        tampered = CompiledKernel(
            kernel=KernelType.SYMGS,  # wrong metadata
            n=good.n, omega=good.omega, nnz=good.nnz,
            reordered=good.reordered,
            program=good.program, image=good.image,
        )
        with pytest.raises(ConfigError):
            program_accelerator(tampered)

    def test_custom_hardware_config(self, spd_medium, rng):
        compiled = compile_kernel(KernelType.SPMV, spd_medium)
        acc = program_accelerator(
            compiled, config=AlreschaConfig(bandwidth_bytes_per_s=576e9))
        x = rng.normal(size=70)
        _y, report = acc.run_spmv(x)
        assert report.bytes_per_cycle == pytest.approx(576e9 / 2.5e9)


class TestPrecisionOption:
    def test_fp32_traffic_halves_streamed_bytes(self, spd_medium, rng):
        x = rng.normal(size=70)
        acc64 = Alrescha.from_matrix(KernelType.SPMV, spd_medium)
        acc32 = Alrescha.from_matrix(
            KernelType.SPMV, spd_medium,
            config=AlreschaConfig(element_bytes=4))
        y64, r64 = acc64.run_spmv(x)
        y32, r32 = acc32.run_spmv(x)
        # Functional results identical (numerics stay fp64).
        np.testing.assert_array_equal(y64, y32)
        # Payload traffic halves; total cycles shrink (until the ALU
        # row becomes the bottleneck).
        assert r32.useful_bytes == pytest.approx(r64.useful_bytes / 2)
        assert r32.cycles < r64.cycles

    def test_fp32_saves_energy(self, spd_medium, rng):
        x = rng.normal(size=70)
        acc64 = Alrescha.from_matrix(KernelType.SPMV, spd_medium)
        acc32 = Alrescha.from_matrix(
            KernelType.SPMV, spd_medium,
            config=AlreschaConfig(element_bytes=4))
        _y, r64 = acc64.run_spmv(x)
        _y, r32 = acc32.run_spmv(x)
        assert r32.energy_j < r64.energy_j
