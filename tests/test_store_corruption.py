"""Artifact-store damage handling: a corrupt artifact is never served.

Every load travels through the schema-versioned checksum envelope, so
truncation, bit flips and version skew are caught *before* any payload
is trusted.  Policy decides what happens next: ``on_error="raise"``
surfaces a typed :class:`~repro.errors.StoreError`;
``on_error="recompile"`` (the default) falls back to compiling from
the source matrix — counted in the :class:`~repro.store.StoreReport`
— and never a wrong answer.  ``repro cache verify`` exits nonzero
naming the offending key.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.accelerator import AlreschaConfig
from repro.core.config import KernelType
from repro.core.device_image import encode_image
from repro.errors import StoreCorruptionError, StoreError, StoreVersionError
from repro.host.compile import encode_program
from repro.store import (
    ArtifactStore,
    STORE_SCHEMA_VERSION,
    pack_envelope,
    unpack_envelope,
)
from repro.cli import main

from .conftest import make_spd_dense


@pytest.fixture
def matrix():
    return make_spd_dense(20, density=0.2, seed=4)


@pytest.fixture
def primed(tmp_path, matrix):
    """A store directory holding one valid artifact; returns (root, key)."""
    store = ArtifactStore(tmp_path)
    _, key = store.conversion(KernelType.SPMV, matrix, AlreschaConfig())
    return tmp_path, key


def _bump_version(path):
    """Rewrite the envelope header to claim a future schema version."""
    raw = bytearray(path.read_bytes())
    magic, version, reserved, mlen, mcrc = struct.unpack(
        ">4sHHII", raw[:16])
    raw[:16] = struct.pack(">4sHHII", magic, version + 1, reserved,
                           mlen, mcrc)
    path.write_bytes(bytes(raw))


class TestEnvelope:
    def test_pack_unpack_round_trip(self):
        manifest = {"key": "k", "n": 3}
        sections = {"b": b"world", "a": b"hello"}
        data = pack_envelope(manifest, sections)
        got_manifest, got_sections = unpack_envelope(data)
        assert got_manifest["key"] == "k"
        assert got_sections == sections

    @pytest.mark.parametrize("cut", [0, 3, 15])
    def test_truncated_header_rejected(self, cut):
        data = pack_envelope({"k": 1}, {"s": b"x"})
        with pytest.raises(StoreCorruptionError, match="truncated"):
            unpack_envelope(data[:cut])

    def test_bad_magic_rejected(self):
        data = bytearray(pack_envelope({"k": 1}, {"s": b"x"}))
        data[0] ^= 0xFF
        with pytest.raises(StoreCorruptionError, match="magic"):
            unpack_envelope(bytes(data))

    def test_future_version_is_typed_distinctly(self):
        data = bytearray(pack_envelope({"k": 1}, {"s": b"x"}))
        data[4:6] = struct.pack(">H", STORE_SCHEMA_VERSION + 1)
        with pytest.raises(StoreVersionError) as exc:
            unpack_envelope(bytes(data))
        assert str(STORE_SCHEMA_VERSION + 1) in str(exc.value)

    def test_payload_bit_flip_caught_by_section_crc(self):
        data = bytearray(pack_envelope({"k": 1}, {"s": b"payload"}))
        data[-2] ^= 0x01
        with pytest.raises(StoreCorruptionError, match="checksum"):
            unpack_envelope(bytes(data))


class TestLoadPolicy:
    def _load(self, root, matrix, **kwargs):
        store = ArtifactStore(root, **kwargs)
        conv, key = store.conversion(KernelType.SPMV, matrix,
                                     AlreschaConfig())
        return store, conv

    @pytest.fixture(params=["truncate", "bitflip"])
    def damaged(self, request, primed):
        root, key = primed
        path = root / f"{key}.alra"
        raw = path.read_bytes()
        if request.param == "truncate":
            path.write_bytes(raw[: len(raw) // 2])
        else:
            flipped = bytearray(raw)
            flipped[len(raw) // 2] ^= 0x10
            path.write_bytes(bytes(flipped))
        return root, key

    def test_raise_policy_surfaces_typed_error(self, damaged, matrix):
        root, _ = damaged
        store = ArtifactStore(root, on_error="raise")
        with pytest.raises(StoreError):
            store.conversion(KernelType.SPMV, matrix, AlreschaConfig())

    def test_recompile_policy_degrades_correctly(self, damaged, matrix):
        """Default policy: the damaged artifact is abandoned, the
        conversion recompiles from source, and the fresh artifact
        overwrites the damaged one — never a wrong answer."""
        root, key = damaged
        store, conv = self._load(root, matrix)
        rep = store.report()
        assert rep.corrupt_fallbacks == 1
        assert rep.conversions_compiled == 1
        assert rep.conversions_loaded == 0
        # The recompiled result matches a storeless compile exactly.
        from repro.core.convert import convert
        fresh = convert(KernelType.SPMV, matrix, omega=8)
        assert (encode_program(conv.kernel, conv.table)
                == encode_program(fresh.kernel, fresh.table))
        assert encode_image(conv.matrix) == encode_image(fresh.matrix)
        # ... and the rewritten artifact now loads cleanly.
        retry = ArtifactStore(root)
        retry.conversion(KernelType.SPMV, matrix, AlreschaConfig())
        assert retry.report().conversions_loaded == 1

    def test_version_skew_counted_separately(self, primed, matrix):
        root, key = primed
        _bump_version(root / f"{key}.alra")
        with pytest.raises(StoreVersionError):
            ArtifactStore(root, on_error="raise").conversion(
                KernelType.SPMV, matrix, AlreschaConfig())
        # Default policy: recompile (which also rewrites the artifact
        # at the current schema version).
        store, _ = self._load(root, matrix)
        rep = store.report()
        assert rep.version_fallbacks == 1
        assert rep.corrupt_fallbacks == 0
        assert rep.conversions_compiled == 1
        retry = ArtifactStore(root)
        retry.conversion(KernelType.SPMV, matrix, AlreschaConfig())
        assert retry.report().conversions_loaded == 1


class TestVerify:
    def test_clean_store_verifies(self, primed):
        root, key = primed
        assert ArtifactStore(root).verify() == []

    def test_damaged_artifact_named(self, primed):
        root, key = primed
        path = root / f"{key}.alra"
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x40
        path.write_bytes(bytes(raw))
        problems = ArtifactStore(root).verify()
        assert [k for k, _ in problems] == [key]
        assert "checksum" in problems[0][1]

    def test_forged_content_caught_by_recompile_diff(self, tmp_path):
        """A tampered artifact with *valid* checksums — the envelope
        alone cannot catch it — is exposed by verify's
        recompile-and-byte-diff against the recorded dataset source."""
        from repro.datasets import load_dataset

        mat = load_dataset("stencil27", scale=0.02).matrix
        store = ArtifactStore(tmp_path)
        _, key = store.conversion(
            KernelType.SPMV, mat, AlreschaConfig(),
            source={"dataset": "stencil27", "scale": 0.02})
        assert store.verify() == []

        # Forge: perturb one block value, repack with correct
        # checksums throughout.
        path = tmp_path / f"{key}.alra"
        manifest, sections = unpack_envelope(path.read_bytes())
        blocks = np.frombuffer(sections["bcsr_blocks"],
                               dtype="<f8").copy()
        blocks[np.flatnonzero(blocks)[0]] *= 2.0
        sections["bcsr_blocks"] = blocks.tobytes()
        manifest.pop("sections", None)
        path.write_bytes(pack_envelope(manifest, sections))

        problems = ArtifactStore(tmp_path).verify()
        assert [k for k, _ in problems] == [key]
        assert "differ" in problems[0][1]


class TestCacheVerifyCLI:
    def test_clean_store_exits_zero(self, primed, capsys):
        root, _ = primed
        assert main(["cache", "verify", "--store", str(root)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_damaged_store_exits_one_naming_key(self, primed, capsys):
        root, key = primed
        path = root / f"{key}.alra"
        path.write_bytes(path.read_bytes()[:40])
        assert main(["cache", "verify", "--store", str(root)]) == 1
        err = capsys.readouterr().err
        assert key in err
        assert "FAIL" in err

    def test_specific_key_selection(self, primed, capsys):
        root, key = primed
        assert main(["cache", "verify", "--store", str(root),
                     key]) == 0
        assert main(["cache", "verify", "--store", str(root),
                     "no-such-key"]) == 1
        assert "no-such-key" in capsys.readouterr().err
