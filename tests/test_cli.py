"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import main


class TestListAndInfo:
    def test_list_all(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "stencil27" in out
        assert "com-orkut" in out

    def test_list_kind_filter(self, capsys):
        assert main(["list-datasets", "--kind", "scientific"]) == 0
        out = capsys.readouterr().out
        assert "stencil27" in out
        assert "com-orkut" not in out

    def test_info(self, capsys):
        assert main(["info", "stencil27", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "block density" in out
        assert "GPU seq fraction" in out

    def test_info_graph(self, capsys):
        assert main(["info", "Youtube", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "graph" in out


class TestRun:
    def test_run_spmv(self, capsys):
        assert main(["run", "spmv", "--dataset", "af_shell",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "SpMV" in out
        assert "BW utilization" in out

    def test_run_symgs(self, capsys):
        assert main(["run", "symgs", "--dataset", "stencil27",
                     "--scale", "0.05"]) == 0
        assert "SymGS" in capsys.readouterr().out

    def test_run_pcg(self, capsys):
        assert main(["run", "pcg", "--dataset", "af_shell",
                     "--scale", "0.05", "--iterations", "40"]) == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "kernel switches" in out

    def test_run_bfs(self, capsys):
        assert main(["run", "bfs", "--dataset", "Youtube",
                     "--scale", "0.05"]) == 0
        assert "BFS" in capsys.readouterr().out

    def test_run_sssp_weights_synthesized(self, capsys):
        assert main(["run", "sssp", "--dataset", "Youtube",
                     "--scale", "0.05"]) == 0
        assert "SSSP" in capsys.readouterr().out

    def test_run_pagerank(self, capsys):
        assert main(["run", "pagerank", "--dataset", "Youtube",
                     "--scale", "0.05"]) == 0
        assert "top-5" in capsys.readouterr().out

    def test_run_cc(self, capsys):
        assert main(["run", "cc", "--dataset", "roadNet-CA",
                     "--scale", "0.03"]) == 0
        assert "components" in capsys.readouterr().out

    def test_run_hpcg(self, capsys):
        assert main(["run", "hpcg", "--scale", "0.05",
                     "--iterations", "3"]) == 0
        assert "GFLOP/s" in capsys.readouterr().out


class TestSurveyAndExperiment:
    def test_survey(self, capsys):
        assert main(["survey", "stencil27", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Alrescha (runtime)" in out
        assert "BCSR" in out

    def test_experiment_fig16(self, capsys):
        assert main(["experiment", "fig16", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "gpu" in out
        assert "alrescha" in out

    def test_unknown_dataset_is_reported_not_raised(self, capsys):
        # Regression: this used to escape as a raw DatasetError traceback.
        assert main(["info", "not-a-dataset"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error:" in err
        assert "not-a-dataset" in err
        assert "stencil27" in err  # the known-dataset list is shown

    def test_bad_scale_is_reported_not_raised(self, capsys):
        assert main(["info", "stencil27", "--scale", "-1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "scale" in err

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServe:
    def test_serve_clean_pool(self, capsys):
        assert main(["serve", "--requests", "20", "--devices", "2",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "served 20 requests over 2 device(s)" in out
        assert "degraded" in out and "breaker trips" in out
        assert "latency p99" in out

    def test_serve_output_deterministic(self, capsys):
        assert main(["serve", "--requests", "30", "--devices", "2",
                     "--fault-rate", "0.1", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--requests", "30", "--devices", "2",
                     "--fault-rate", "0.1", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first

    def test_serve_bad_args_exit_2(self, capsys):
        assert main(["serve", "--requests", "5", "--devices", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_batch_flag(self, capsys):
        assert main(["serve", "--requests", "30", "--devices", "2",
                     "--seed", "3", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "batch 4:" in out
        assert "batches" in out and "jobs fused" in out
        assert "stream saved" in out

    def test_serve_batch_one_output_matches_default(self, capsys):
        # --batch 1 is the off switch: byte-identical output to not
        # passing the flag at all (no batch header, no batch lines).
        args = ["serve", "--requests", "30", "--devices", "2",
                "--seed", "7"]
        assert main(args) == 0
        default = capsys.readouterr().out
        assert main(args + ["--batch", "1"]) == 0
        assert capsys.readouterr().out == default
        assert "batches" not in default

    def test_serve_trace_file_replays_workload(self, tmp_path, capsys):
        from repro.runtime import TraceSpec, dump_trace, make_trace

        trace = make_trace(TraceSpec(n_requests=12, seed=5, scale=0.04))
        path = tmp_path / "workload.json"
        dump_trace(trace, str(path))
        assert main(["serve", "--trace-file", str(path),
                     "--devices", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert f"served 12 replayed requests from {path}" in out
        # --requests is overridden by the replayed trace's length.
        assert "requests        : 12" in out

    def test_serve_trace_file_matches_generated(self, capsys):
        # Replaying a dumped trace must reproduce the generated run's
        # report byte-for-byte (load_trace round-trips exactly).
        import tempfile

        from repro.runtime import TraceSpec, dump_trace, make_trace

        assert main(["serve", "--requests", "15", "--devices", "2",
                     "--fault-rate", "0.1", "--seed", "7"]) == 0
        generated = capsys.readouterr().out.splitlines()[1:]
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/t.json"
            dump_trace(make_trace(TraceSpec(n_requests=15, seed=7)), path)
            assert main(["serve", "--trace-file", path, "--devices", "2",
                         "--fault-rate", "0.1", "--seed", "7"]) == 0
        replayed = capsys.readouterr().out.splitlines()[1:]
        assert replayed == generated

    def test_serve_deadline_edge_fixture(self, capsys):
        # The checked-in fixture encodes both deadline-boundary bug
        # scenarios; both must finalise TIMEOUT (not inflate past the
        # deadline, not report DEGRADED while late).
        fixture = (pathlib.Path(__file__).resolve().parent.parent
                   / "examples" / "traces" / "deadline_edge.json")
        assert main(["serve", "--trace-file", str(fixture),
                     "--devices", "2", "--fault-rate", "0.9",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "timeout         : 2" in out
        assert "failed          : 0" in out


class TestTrace:
    def test_trace_symgs_prints_attribution(self, capsys):
        assert main(["trace", "symgs", "--dataset", "stencil27",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "datapath:gemv" in out
        assert "engine wall" in out

    def test_trace_check_passes_by_default(self, capsys):
        assert main(["trace", "symgs", "--scale", "0.05",
                     "--check"]) == 0
        assert "trace invariants: ok" in capsys.readouterr().out

    def test_trace_check_fails_on_ablation(self, capsys):
        # Disabling reconfiguration hiding breaks the §4.4 containment
        # invariant, which --check must surface as exit 1.
        assert main(["trace", "symgs", "--scale", "0.05",
                     "--no-hide-reconfig", "--check"]) == 1
        err = capsys.readouterr().err
        assert "violation" in err

    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "symgs", "--scale", "0.05",
                     "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        names = {e["args"].get("name") for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert {"engine", "channel"} <= names

    def test_trace_pcg_has_solver_track(self, tmp_path):
        out = tmp_path / "pcg.json"
        assert main(["trace", "pcg", "--scale", "0.04",
                     "--iterations", "4", "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "solver" in cats

    def test_run_trace_flag(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert main(["run", "symgs", "--dataset", "stencil27",
                     "--scale", "0.05", "--trace", str(out)]) == 0
        assert "trace written" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]

    def test_run_trace_does_not_change_report(self, tmp_path, capsys):
        args = ["run", "symgs", "--dataset", "stencil27",
                "--scale", "0.05"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--trace", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out
        assert traced.startswith(plain.rstrip("\n").rsplit(
            "trace written", 1)[0].rstrip("\n"))
        assert plain in traced

    def test_serve_trace_flag(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        assert main(["serve", "--requests", "15", "--devices", "2",
                     "--seed", "3", "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "job" in cats and "device" in cats


class TestCompileAndValidate:
    def test_compile_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "k"
        assert main(["compile", "spmv", "--dataset", "af_shell",
                     "--scale", "0.05", "-o", str(out)]) == 0
        prog = (tmp_path / "k.prog").read_bytes()
        img = (tmp_path / "k.img").read_bytes()
        assert prog and img
        # Artifacts decode back to a runnable kernel.
        from repro.core import decode_image, decode_program
        kernel, table = decode_program(prog)
        matrix = decode_image(img)
        assert kernel.value == "spmv"
        assert len(table) == matrix.n_blocks

    def test_validate_passes(self, capsys):
        assert main(["validate", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "validations passed" in out


class TestServeChaos:
    CHAOS_ARGS = ["serve", "--requests", "30", "--devices", "3",
                  "--fault-rate", "0.1", "--seed", "5",
                  "--scale", "0.04", "--chaos", "0.2:9",
                  "--hedge", "1.5"]

    def test_chaos_and_hedge_flags_accepted(self, capsys):
        assert main(self.CHAOS_ARGS) == 0
        out = capsys.readouterr().out
        assert "chaos 0.2:9" in out
        assert "hedge x1.5" in out

    def test_bad_chaos_spec_exit_2(self, capsys):
        assert main(["serve", "--requests", "5",
                     "--chaos", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "'bogus'" in err
        assert "RATE[:SEED[:KINDS]]" in err

    def test_out_of_range_chaos_rate_exit_2(self, capsys):
        assert main(["serve", "--requests", "5",
                     "--chaos", "1.5"]) == 2

    def test_check_passes_on_chaotic_run(self, capsys):
        assert main(self.CHAOS_ARGS + ["--check"]) == 0
        out = capsys.readouterr().out
        assert "trace invariants: ok" in out

    def test_report_json_is_canonical_and_deterministic(
            self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(self.CHAOS_ARGS + ["--report-json", str(a)]) == 0
        assert main(self.CHAOS_ARGS + ["--report-json", str(b)]) == 0
        out = capsys.readouterr().out
        assert f"report written: {a}" in out
        assert a.read_bytes() == b.read_bytes()
        decoded = json.loads(a.read_text())
        assert decoded["admitted"] + decoded["rejected"] == 30
        for key in ("crashes", "hangs", "recoveries",
                    "hedges_launched", "hedges_won"):
            assert key in decoded

    def test_report_json_without_chaos_has_zero_counters(
            self, tmp_path, capsys):
        path = tmp_path / "clean.json"
        assert main(["serve", "--requests", "10", "--devices", "2",
                     "--scale", "0.04",
                     "--report-json", str(path)]) == 0
        capsys.readouterr()
        decoded = json.loads(path.read_text())
        assert decoded["crashes"] == 0
        assert decoded["hedges_launched"] == 0


class TestChaosStormFixture:
    def test_storm_fixture_replays_clean(self, tmp_path, capsys):
        # The CI smoke's contract, pinned as a test: the checked-in
        # storm workload under seeded chaos + hedging must see real
        # incidents, lose no job to them, pass the trace invariants
        # and reproduce its report byte-for-byte.
        fixture = (pathlib.Path(__file__).resolve().parent.parent
                   / "examples" / "traces" / "chaos_storm.json")
        base = ["serve", "--trace-file", str(fixture),
                "--devices", "3", "--fault-rate", "0.1",
                "--seed", "0", "--chaos", "0.25:7",
                "--hedge", "2.0"]
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(base + ["--check", "--report-json", str(a)]) == 0
        out = capsys.readouterr().out
        assert "trace invariants: ok" in out
        assert main(base + ["--report-json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        decoded = json.loads(a.read_text())
        assert decoded["crashes"] + decoded["hangs"] > 0
        assert decoded["failed"] == 0


class TestStoreAndCache:
    SERVE = ["serve", "--requests", "8", "--devices", "2",
             "--seed", "3", "--scale", "0.02"]

    def _serve_with_store(self, store_dir, extra=()):
        return main(self.SERVE + ["--store", str(store_dir)]
                    + list(extra))

    def test_serve_store_warm_start_zero_compilations(
            self, tmp_path, capsys):
        store = tmp_path / "cache"
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert self._serve_with_store(
            store, ["--report-json", str(a)]) == 0
        cold = capsys.readouterr().out
        assert "store: compiled=" in cold
        assert "compiled=0" not in cold
        assert self._serve_with_store(
            store, ["--report-json", str(b)]) == 0
        warm = capsys.readouterr().out
        # The CI warm-start smoke's contract: zero programming work,
        # byte-identical report.
        assert "store: compiled=0" in warm
        assert "captured=0" in warm
        assert a.read_bytes() == b.read_bytes()

    def test_serve_without_store_prints_no_store_line(self, capsys):
        assert main(self.SERVE) == 0
        assert "store:" not in capsys.readouterr().out

    def test_cache_ls_lists_artifacts(self, tmp_path, capsys):
        store = tmp_path / "cache"
        assert self._serve_with_store(store) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert ".alra" not in out  # keys, not file names
        assert "spmv-w8-" in out
        assert "artifact(s)" in out

    def test_cache_ls_empty_store(self, tmp_path, capsys):
        assert main(["cache", "ls", "--store",
                     str(tmp_path / "empty")]) == 0
        assert "0 artifact(s), 0 bytes" in capsys.readouterr().out

    def test_cache_gc_all(self, tmp_path, capsys):
        store = tmp_path / "cache"
        assert self._serve_with_store(store) == 0
        capsys.readouterr()
        assert main(["cache", "gc", "--store", str(store),
                     "--all"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert list(store.glob("*.alra")) == []

    def test_cache_gc_requires_a_bound(self, tmp_path, capsys):
        assert main(["cache", "gc", "--store",
                     str(tmp_path)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_cache_verify_clean_and_damaged(self, tmp_path, capsys):
        store = tmp_path / "cache"
        assert self._serve_with_store(store) == 0
        capsys.readouterr()
        assert main(["cache", "verify", "--store", str(store)]) == 0
        assert "ok" in capsys.readouterr().out
        victim = sorted(store.glob("*.alra"))[0]
        victim.write_bytes(victim.read_bytes()[:32])
        assert main(["cache", "verify", "--store", str(store)]) == 1
        err = capsys.readouterr().err
        assert victim.name[:-len(".alra")] in err


class TestServeAutoscaleAndRecord:
    BURSTY = ["serve", "--requests", "60", "--devices", "2",
              "--seed", "3", "--scale", "0.04",
              "--shape", "bursty+zipf"]

    def test_shape_flag_shapes_the_trace(self, capsys):
        assert main(self.BURSTY) == 0
        out = capsys.readouterr().out
        assert "shape bursty+zipf" in out

    def test_bad_shape_exit_2(self, capsys):
        assert main(["serve", "--requests", "5",
                     "--shape", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "'bogus'" in err

    def test_autoscale_flag_reports_elasticity(self, capsys):
        assert main(self.BURSTY + ["--autoscale", "1:6:8000"]) == 0
        out = capsys.readouterr().out
        assert "autoscale 1:6:8000" in out
        assert "autoscale       : [1, 6]" in out
        assert "provisioned     :" in out

    def test_bad_autoscale_spec_exit_2(self, capsys):
        assert main(["serve", "--requests", "5",
                     "--autoscale", "two:8"]) == 2
        err = capsys.readouterr().err
        assert "'two'" in err
        assert "--autoscale" in err
        assert main(["serve", "--requests", "5",
                     "--autoscale", "4"]) == 2
        assert "MIN:MAX[:COOLDOWN]" in capsys.readouterr().err

    def test_autoscale_off_output_is_unchanged(self, capsys):
        # No --autoscale: byte-identical output to the historical
        # serve path, no elasticity lines anywhere.
        assert main(["serve", "--requests", "20", "--devices", "2",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "autoscale" not in out

    def test_record_then_replay_is_field_identical(self, tmp_path,
                                                   capsys):
        rec = tmp_path / "bursty.json"
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(self.BURSTY + ["--record", str(rec),
                                   "--report-json", str(a)]) == 0
        out = capsys.readouterr().out
        assert f"trace recorded: {rec}" in out
        assert main(["serve", "--trace-file", str(rec),
                     "--devices", "2", "--seed", "3",
                     "--scale", "0.04",
                     "--report-json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_record_is_reproducible(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(self.BURSTY + ["--record", str(a)]) == 0
        assert main(self.BURSTY + ["--record", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_record_captures_a_replayed_trace_verbatim(self, tmp_path,
                                                       capsys):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(self.BURSTY + ["--record", str(first)]) == 0
        assert main(["serve", "--trace-file", str(first),
                     "--devices", "2", "--seed", "3",
                     "--record", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_autoscaled_bursty_check_passes(self, capsys):
        assert main(self.BURSTY + ["--autoscale", "2:8",
                                   "--check"]) == 0
        assert "trace invariants: ok" in capsys.readouterr().out
