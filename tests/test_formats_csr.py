"""Unit tests for the CSR format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix, CSRMatrix


class TestConstruction:
    def test_round_trip(self, spd_small):
        csr = CSRMatrix.from_dense(spd_small)
        np.testing.assert_allclose(csr.to_dense(), spd_small)

    def test_from_coo(self, spd_small):
        coo = COOMatrix.from_dense(spd_small)
        csr = CSRMatrix.from_coo(coo)
        assert csr.nnz == coo.nnz
        np.testing.assert_allclose(csr.to_dense(), spd_small)

    def test_from_scipy(self, small_digraph):
        csr = CSRMatrix.from_scipy(small_digraph)
        np.testing.assert_allclose(csr.to_dense(), small_digraph.toarray())

    def test_empty_rows_handled(self):
        dense = np.zeros((5, 5))
        dense[0, 4] = 1.0
        dense[4, 0] = 2.0
        csr = CSRMatrix.from_dense(dense)
        assert list(csr.row_nnz()) == [1, 0, 0, 0, 1]
        np.testing.assert_allclose(csr.to_dense(), dense)


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])

    def test_decreasing_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1, 0], [0], [1.0])

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [1, 1, 1], [], [])

    def test_indptr_end_must_equal_nnz(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1, 3], [0, 1], [1.0, 2.0])

    def test_column_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1, 1], [5], [1.0])


class TestOperations:
    def test_spmv_matches_dense(self, spd_medium, rng):
        csr = CSRMatrix.from_dense(spd_medium)
        x = rng.normal(size=spd_medium.shape[1])
        np.testing.assert_allclose(csr.spmv(x), spd_medium @ x)

    def test_spmv_with_empty_rows(self, rng):
        dense = np.zeros((6, 6))
        dense[1, 2] = 3.0
        csr = CSRMatrix.from_dense(dense)
        x = rng.normal(size=6)
        np.testing.assert_allclose(csr.spmv(x), dense @ x)

    def test_row_access(self, spd_small):
        csr = CSRMatrix.from_dense(spd_small)
        cols, vals = csr.row(0)
        expected = np.nonzero(spd_small[0])[0]
        np.testing.assert_array_equal(cols, expected)
        np.testing.assert_allclose(vals, spd_small[0][expected])

    def test_diagonal(self, spd_small):
        csr = CSRMatrix.from_dense(spd_small)
        np.testing.assert_allclose(csr.diagonal(), np.diag(spd_small))

    def test_transpose(self, spd_small):
        csr = CSRMatrix.from_dense(spd_small)
        np.testing.assert_allclose(csr.transpose().to_dense(), spd_small.T)

    def test_to_coo_round_trip(self, spd_small):
        csr = CSRMatrix.from_dense(spd_small)
        np.testing.assert_allclose(csr.to_coo().to_dense(), spd_small)

    def test_metadata_cheaper_than_coo(self, spd_medium):
        coo = COOMatrix.from_dense(spd_medium)
        csr = CSRMatrix.from_coo(coo)
        assert csr.metadata_bits() < coo.metadata_bits()
