"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix, blocked_coo_metadata_bits


class TestConstruction:
    def test_round_trip_dense(self, spd_small):
        coo = COOMatrix.from_dense(spd_small)
        np.testing.assert_allclose(coo.to_dense(), spd_small)

    def test_from_scipy(self, small_digraph):
        coo = COOMatrix.from_scipy(small_digraph)
        np.testing.assert_allclose(coo.to_dense(),
                                   small_digraph.toarray())

    def test_triples_sorted_row_major(self):
        coo = COOMatrix((3, 3), [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        assert list(coo.rows) == [0, 1, 2]
        assert list(coo.cols) == [2, 1, 0]

    def test_duplicates_summed(self):
        coo = COOMatrix((2, 2), [0, 0], [1, 1], [2.0, 3.0])
        assert coo.nnz == 1
        assert coo.to_dense()[0, 1] == pytest.approx(5.0)

    def test_explicit_zeros_dropped(self):
        coo = COOMatrix((2, 2), [0, 1], [0, 1], [0.0, 1.0])
        assert coo.nnz == 1

    def test_duplicates_cancelling_to_zero_dropped(self):
        coo = COOMatrix((2, 2), [0, 0], [1, 1], [2.0, -2.0])
        assert coo.nnz == 0

    def test_empty_matrix(self):
        coo = COOMatrix((4, 4), [], [], [])
        assert coo.nnz == 0
        np.testing.assert_allclose(coo.to_dense(), np.zeros((4, 4)))


class TestValidation:
    def test_out_of_range_row(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), [2], [0], [1.0])

    def test_out_of_range_col(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), [0], [5], [1.0])

    def test_negative_index(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), [-1], [0], [1.0])

    def test_mismatched_arrays(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), [0, 1], [0], [1.0])

    def test_bad_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix((0, 2), [], [], [])


class TestOperations:
    def test_spmv_matches_dense(self, spd_small, rng):
        coo = COOMatrix.from_dense(spd_small)
        x = rng.normal(size=spd_small.shape[1])
        np.testing.assert_allclose(coo.spmv(x), spd_small @ x)

    def test_spmv_shape_check(self, spd_small):
        coo = COOMatrix.from_dense(spd_small)
        with pytest.raises(ShapeError):
            coo.spmv(np.zeros(3))

    def test_transpose(self, spd_small):
        coo = COOMatrix.from_dense(spd_small)
        np.testing.assert_allclose(coo.transpose().to_dense(), spd_small.T)

    def test_metadata_bits_positive(self, spd_small):
        coo = COOMatrix.from_dense(spd_small)
        assert coo.metadata_bits() > 0
        # COO: row index + col index per non-zero.
        assert coo.metadata_bits() == coo.nnz * 2 * 5  # 17 -> 5 bits


class TestBlockedCOO:
    def test_counts_nonempty_blocks(self):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0
        dense[1, 1] = 1.0  # same 4x4 block
        dense[7, 7] = 1.0  # different block
        coo = COOMatrix.from_dense(dense)
        bits = blocked_coo_metadata_bits(coo, block=4)
        assert bits == 2 * 2  # 2 blocks x (1 + 1) bits

    def test_invalid_block(self, spd_small):
        coo = COOMatrix.from_dense(spd_small)
        with pytest.raises(FormatError):
            blocked_coo_metadata_bits(coo, block=0)
