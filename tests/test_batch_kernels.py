"""Batched multi-RHS kernels: one payload stream, per-column answers.

``run_spmv_batch`` / ``run_symgs_batch`` process a stacked ``(n, k)``
operand panel per ω-block while streaming the programmed payload once
for the whole batch.  The contracts pinned here:

* every answer column is bit-identical to the corresponding solo run,
  on both the compiled-plan and the legacy interpreter path;
* the plan path reproduces the interpreter's batch report field for
  field (the same lowering guarantee the solo plans carry);
* the payload stream appears once — ``dram_requests`` of a k-batch
  equals the solo count, and only the small per-RHS vector traffic
  grows with k;
* FCU compute scales with k while stream cycles do not, so batch
  cycles grow sublinearly.
"""

import numpy as np
import pytest

from repro.core import Alrescha, AlreschaConfig, KernelType
from repro.datasets import load_dataset
from repro.errors import SimulationError
from repro.sim.faults import FaultModel

from tests.test_plan import assert_reports_identical

SCALE = 0.05


@pytest.fixture(scope="module")
def matrix():
    return load_dataset("stencil27", scale=SCALE).matrix


def make(kernel, matrix, use_plan, fault_model=None):
    config = AlreschaConfig(use_plan=use_plan, fault_model=fault_model)
    return Alrescha.from_matrix(kernel, matrix, config=config)


def panel(n, k, seed=0):
    return np.random.default_rng(seed).normal(size=(n, k))


class TestColumnIdentity:
    @pytest.mark.parametrize("use_plan", [False, True])
    @pytest.mark.parametrize("k", [1, 3, 4])
    def test_spmv_batch_columns_equal_solo_runs(self, matrix, use_plan, k):
        x = panel(matrix.shape[0], k)
        batch = make(KernelType.SPMV, matrix, use_plan)
        y, _ = batch.run_spmv_batch(x)
        assert y.shape == x.shape
        solo = make(KernelType.SPMV, matrix, use_plan)
        for col in range(k):
            y1, _ = solo.run_spmv(x[:, col])
            assert np.array_equal(y[:, col], y1)

    @pytest.mark.parametrize("use_plan", [False, True])
    @pytest.mark.parametrize("k", [1, 3, 4])
    def test_symgs_batch_columns_equal_solo_runs(self, matrix, use_plan, k):
        n = matrix.shape[0]
        b, x0 = panel(n, k, seed=1), panel(n, k, seed=2)
        batch = make(KernelType.SYMGS, matrix, use_plan)
        y, _ = batch.run_symgs_batch(b, x0)
        solo = make(KernelType.SYMGS, matrix, use_plan)
        for col in range(k):
            y1, _ = solo.run_symgs_sweep(b[:, col], x0[:, col])
            assert np.array_equal(y[:, col], y1)

    @pytest.mark.parametrize("use_plan", [False, True])
    def test_one_dimensional_operand_is_a_width_one_batch(
            self, matrix, use_plan):
        n = matrix.shape[0]
        x = panel(n, 1)[:, 0]
        acc = make(KernelType.SPMV, matrix, use_plan)
        y, _ = acc.run_spmv_batch(x)
        assert y.shape == (n, 1)
        solo = make(KernelType.SPMV, matrix, use_plan)
        y1, _ = solo.run_spmv(x)
        assert np.array_equal(y[:, 0], y1)


class TestPlanReportIdentity:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_spmv_batch_plan_matches_interpreter(self, matrix, k):
        x = panel(matrix.shape[0], k)
        plan_acc = make(KernelType.SPMV, matrix, use_plan=True)
        y_plan, rep_plan = plan_acc.run_spmv_batch(x)
        legacy_acc = make(KernelType.SPMV, matrix, use_plan=False)
        y_leg, rep_leg = legacy_acc.run_spmv_batch(x)
        assert np.array_equal(y_plan, y_leg)
        assert_reports_identical(rep_plan, rep_leg)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_symgs_batch_plan_matches_interpreter(self, matrix, k):
        n = matrix.shape[0]
        b, x0 = panel(n, k, seed=3), panel(n, k, seed=4)
        plan_acc = make(KernelType.SYMGS, matrix, use_plan=True)
        y_plan, rep_plan = plan_acc.run_symgs_batch(b, x0)
        legacy_acc = make(KernelType.SYMGS, matrix, use_plan=False)
        y_leg, rep_leg = legacy_acc.run_symgs_batch(b, x0)
        assert np.array_equal(y_plan, y_leg)
        assert_reports_identical(rep_plan, rep_leg)


class TestPayloadStreamedOnce:
    @pytest.mark.parametrize("kernel,runner", [
        (KernelType.SPMV,
         lambda acc, x: acc.run_spmv_batch(x)),
        (KernelType.SYMGS,
         lambda acc, x: acc.run_symgs_batch(x, np.zeros_like(x))),
    ])
    @pytest.mark.parametrize("use_plan", [False, True])
    def test_dram_requests_do_not_grow_with_k(self, matrix, kernel,
                                              runner, use_plan):
        n = matrix.shape[0]
        k = 4
        solo_acc = make(kernel, matrix, use_plan)
        _, rep1 = runner(solo_acc, panel(n, 1))
        batch_acc = make(kernel, matrix, use_plan)
        _, repk = runner(batch_acc, panel(n, k))
        # The payload stream is issued once per batch: the request
        # count is width-independent.
        assert (repk.counters.get("dram_requests")
                == rep1.counters.get("dram_requests"))
        # Extra traffic is the per-RHS vectors only — far below k
        # full payload streams.
        assert repk.counters.get("dram_bytes") < k * rep1.counters.get(
            "dram_bytes")
        extra = (repk.counters.get("dram_bytes")
                 - rep1.counters.get("dram_bytes"))
        assert extra >= (k - 1) * n * 8  # k-1 extra operand panels

    @pytest.mark.parametrize("use_plan", [False, True])
    def test_batch_cycles_grow_sublinearly(self, matrix, use_plan):
        n = matrix.shape[0]
        k = 4
        solo_acc = make(KernelType.SPMV, matrix, use_plan)
        _, rep1 = solo_acc.run_spmv_batch(panel(n, 1))
        batch_acc = make(KernelType.SPMV, matrix, use_plan)
        _, repk = batch_acc.run_spmv_batch(panel(n, k))
        assert rep1.cycles < repk.cycles < k * rep1.cycles


class TestBatchValidation:
    @pytest.mark.parametrize("use_plan", [False, True])
    def test_symgs_panel_shapes_must_match(self, matrix, use_plan):
        n = matrix.shape[0]
        acc = make(KernelType.SYMGS, matrix, use_plan)
        with pytest.raises(SimulationError):
            acc.run_symgs_batch(panel(n, 3), panel(n, 2))

    @pytest.mark.parametrize("use_plan", [False, True])
    def test_certain_fault_raises_for_the_whole_batch(self, matrix,
                                                      use_plan):
        from repro.errors import FaultError
        fm = FaultModel(rate=1.0, seed=9, persistent=True)
        acc = make(KernelType.SPMV, matrix, use_plan, fault_model=fm)
        with pytest.raises(FaultError):
            acc.run_spmv_batch(panel(matrix.shape[0], 4))
