"""Property-based tests for the program binary and device image."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KernelType, convert, decode_image, decode_program, \
    encode_image, encode_program
from repro.core.binary import BitReader, BitWriter


@st.composite
def random_spd_matrices(draw):
    n = draw(st.integers(4, 40))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(0.02, 0.4))
    a = np.zeros((n, n))
    nnz = max(1, int(density * n * n))
    i = rng.integers(0, n, size=nnz)
    j = rng.integers(0, n, size=nnz)
    a[i, j] = rng.normal(size=nnz)
    a = (a + a.T) / 2
    np.fill_diagonal(a, 0.0)
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    return a


@settings(max_examples=25, deadline=None)
@given(random_spd_matrices(),
       st.sampled_from([KernelType.SPMV, KernelType.SYMGS,
                        KernelType.BFS]))
def test_program_binary_round_trips(matrix, kernel):
    conv = convert(kernel, matrix, omega=8)
    kernel2, table2 = decode_program(encode_program(kernel, conv.table))
    assert kernel2 is kernel
    assert list(table2) == list(conv.table)


@settings(max_examples=25, deadline=None)
@given(random_spd_matrices(), st.booleans())
def test_device_image_round_trips(matrix, symgs_layout):
    from repro.formats import AlreschaMatrix
    alr = AlreschaMatrix.from_dense(matrix, 8, symgs_layout=symgs_layout)
    decoded = decode_image(encode_image(alr))
    np.testing.assert_array_equal(decoded.to_dense(), matrix)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2**20 - 1),
                          st.integers(1, 24)),
                min_size=1, max_size=40))
def test_bitstream_round_trips_arbitrary_fields(fields):
    writer = BitWriter()
    clipped = []
    for value, width in fields:
        v = value & ((1 << width) - 1)
        writer.write(v, width)
        clipped.append((v, width))
    reader = BitReader(writer.to_bytes())
    for v, width in clipped:
        assert reader.read(width) == v
