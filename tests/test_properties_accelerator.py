"""Property-based tests: the accelerator equals the golden kernels on
arbitrary inputs, and its reports satisfy structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Alrescha, KernelType
from repro.kernels import forward_sweep


@st.composite
def spd_systems(draw):
    """Random small SPD system (matrix, b, x0)."""
    n = draw(st.integers(3, 24))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(0.05, 0.5))
    a = np.zeros((n, n))
    nnz = max(1, int(density * n * n))
    i = rng.integers(0, n, size=nnz)
    j = rng.integers(0, n, size=nnz)
    a[i, j] = rng.normal(size=nnz)
    a = (a + a.T) / 2
    np.fill_diagonal(a, 0.0)
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    return a, rng.normal(size=n), rng.normal(size=n)


@st.composite
def digraphs(draw):
    """Random directed weighted adjacency matrix."""
    n = draw(st.integers(3, 24))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n))
    nnz = draw(st.integers(1, 4 * n))
    i = rng.integers(0, n, size=nnz)
    j = rng.integers(0, n, size=nnz)
    w = rng.uniform(0.5, 5.0, size=nnz)
    a[i, j] = w
    np.fill_diagonal(a, 0.0)
    return a


@settings(max_examples=25, deadline=None)
@given(spd_systems())
def test_accelerated_spmv_equals_dense_product(system):
    a, b, _x0 = system
    acc = Alrescha.from_matrix(KernelType.SPMV, a)
    y, report = acc.run_spmv(b)
    np.testing.assert_allclose(y, a @ b, atol=1e-9)
    assert report.cycles > 0


@settings(max_examples=25, deadline=None)
@given(spd_systems())
def test_accelerated_symgs_equals_reference_sweep(system):
    a, b, x0 = system
    acc = Alrescha.from_matrix(KernelType.SYMGS, a)
    x1, report = acc.run_symgs_sweep(b, x0)
    np.testing.assert_allclose(x1, forward_sweep(a, b, x0), atol=1e-8)
    assert report.sequential_cycles >= 0


@settings(max_examples=25, deadline=None)
@given(spd_systems())
def test_symgs_report_invariants(system):
    a, b, x0 = system
    acc = Alrescha.from_matrix(KernelType.SYMGS, a)
    _x1, report = acc.run_symgs_sweep(b, x0)
    assert 0.0 <= report.bandwidth_utilization <= 1.0
    assert 0.0 <= report.sequential_fraction <= 1.0
    assert report.streamed_bytes >= report.useful_bytes * 0.99
    assert report.energy_j >= 0.0
    # The dependent share never exceeds the whole.
    assert report.sequential_cycles <= report.cycles


@settings(max_examples=20, deadline=None)
@given(digraphs())
def test_bfs_pass_monotone_and_bounded(adj):
    at = adj.T.copy()
    at[at != 0] = 1.0
    acc = Alrescha.from_matrix(KernelType.BFS, at)
    n = adj.shape[0]
    dist = np.full(n, np.inf)
    dist[0] = 0.0
    prev = dist
    for _ in range(3):
        new, _rep = acc.run_bfs_pass(prev)
        assert (new <= prev).all()
        finite = np.isfinite(new)
        assert (new[finite] >= 0).all()
        prev = new


@settings(max_examples=20, deadline=None)
@given(digraphs())
def test_pr_pass_conserves_nonnegativity(adj):
    structure = (adj != 0).astype(float)
    acc = Alrescha.from_matrix(KernelType.PAGERANK, structure.T.copy())
    n = adj.shape[0]
    outdeg = structure.sum(axis=1)
    rank = np.full(n, 1.0 / n)
    contrib, _rep = acc.run_pr_pass(rank, outdeg)
    assert (contrib >= 0).all()
    # Mass never increases: sum(contrib) <= sum(rank over non-dangling).
    assert contrib.sum() <= rank[outdeg > 0].sum() + 1e-9


def _assert_reports_identical(a, b):
    for name in ("kernel", "cycles", "useful_bytes", "streamed_bytes",
                 "sequential_cycles", "cache_busy_cycles",
                 "exposed_reconfig_cycles", "n_entries", "n_switches",
                 "energy_j"):
        assert getattr(a, name) == getattr(b, name), name
    assert a.counters.as_dict() == b.counters.as_dict()
    assert a.datapath_cycles == b.datapath_cycles


@settings(max_examples=25, deadline=None)
@given(spd_systems())
def test_plan_path_equals_legacy_spmv(system):
    """The compiled plan is a pure lowering: bit-identical outputs and
    field-identical reports versus the per-block interpreter."""
    a, b, _x0 = system
    acc = Alrescha.from_matrix(KernelType.SPMV, a)
    y_plan, rep_plan = acc.run_spmv(b)
    acc.config.use_plan = False
    y_leg, rep_leg = acc.run_spmv(b)
    np.testing.assert_array_equal(y_plan, y_leg)
    _assert_reports_identical(rep_plan, rep_leg)


@settings(max_examples=25, deadline=None)
@given(spd_systems())
def test_plan_path_equals_legacy_symgs(system):
    a, b, x0 = system
    acc = Alrescha.from_matrix(KernelType.SYMGS, a)
    x_plan, rep_plan = acc.run_symgs_sweep(b, x0)
    acc.config.use_plan = False
    x_leg, rep_leg = acc.run_symgs_sweep(b, x0)
    np.testing.assert_array_equal(x_plan, x_leg)
    _assert_reports_identical(rep_plan, rep_leg)


@settings(max_examples=20, deadline=None)
@given(digraphs())
def test_plan_path_equals_legacy_graph_passes(adj):
    at = adj.T.copy()
    n = adj.shape[0]
    dist = np.full(n, np.inf)
    dist[0] = 0.0
    acc = Alrescha.from_matrix(KernelType.SSSP, at)
    d_plan, rep_plan = acc.run_sssp_pass(dist)
    acc.config.use_plan = False
    d_leg, rep_leg = acc.run_sssp_pass(dist)
    np.testing.assert_array_equal(d_plan, d_leg)
    _assert_reports_identical(rep_plan, rep_leg)
