"""End-to-end integration tests on registry datasets.

These run the full pipeline — dataset generation, Algorithm 1
conversion, accelerator execution, solver/driver iteration, reporting —
exactly as the benchmarks do, at small scale.
"""

import numpy as np
import pytest

from repro.core import Alrescha, KernelType
from repro.datasets import load_dataset
from repro.graph import (
    bfs_reference,
    pagerank_reference,
    run_bfs,
    run_pagerank,
    run_sssp,
    sssp_reference,
)
from repro.kernels import forward_sweep_vectorized
from repro.solvers import AcceleratorBackend, ReferenceBackend, pcg


SCI_SAMPLE = ["stencil27", "scircuit", "economics", "af_shell"]
GRAPH_SAMPLE = ["com-orkut", "roadNet-CA", "hollywood-2009"]


class TestPCGOnDatasets:
    @pytest.mark.parametrize("name", SCI_SAMPLE)
    def test_accelerated_pcg_matches_reference(self, name):
        matrix = load_dataset(name, scale=0.05).matrix
        n = matrix.shape[0]
        rng = np.random.default_rng(1)
        b = rng.normal(size=n)
        ref = pcg(ReferenceBackend(matrix), b, tol=1e-8, max_iter=60)
        acc = pcg(AcceleratorBackend(matrix), b, tol=1e-8, max_iter=60)
        assert acc.iterations == ref.iterations
        np.testing.assert_allclose(acc.x, ref.x, atol=1e-6)
        assert acc.report.cycles > 0
        assert acc.report.sequential_cycles > 0

    def test_symgs_sweep_on_dataset(self):
        matrix = load_dataset("thermal2", scale=0.08).matrix
        n = matrix.shape[0]
        rng = np.random.default_rng(2)
        b, x0 = rng.normal(size=n), rng.normal(size=n)
        acc = Alrescha.from_matrix(KernelType.SYMGS, matrix)
        x1, report = acc.run_symgs_sweep(b, x0)
        expected = forward_sweep_vectorized(matrix, b, x0)
        np.testing.assert_allclose(x1, expected, atol=1e-9)
        assert 0.0 < report.bandwidth_utilization < 1.0


class TestGraphOnDatasets:
    @pytest.mark.parametrize("name", GRAPH_SAMPLE)
    def test_bfs_on_dataset(self, name):
        adj = load_dataset(name, scale=0.05).matrix
        result = run_bfs(adj, 0)
        unit = (adj != 0).astype(float)
        expected = bfs_reference(unit, 0)
        np.testing.assert_allclose(
            np.nan_to_num(result.values, posinf=-1.0),
            np.nan_to_num(expected, posinf=-1.0),
        )

    def test_sssp_on_weighted_dataset(self):
        adj = load_dataset("roadNet-CA", scale=0.05).matrix
        result = run_sssp(adj, 0)
        expected = sssp_reference(adj, 0)
        np.testing.assert_allclose(
            np.nan_to_num(result.values, posinf=-1.0),
            np.nan_to_num(expected, posinf=-1.0),
            atol=1e-9,
        )

    def test_pagerank_on_dataset(self):
        adj = load_dataset("Youtube", scale=0.05).matrix
        result = run_pagerank(adj, tol=1e-10)
        expected = pagerank_reference(adj, tol=1e-10)
        np.testing.assert_allclose(result.values, expected, atol=1e-8)
        assert result.values.sum() == pytest.approx(1.0)


class TestSpMVOnDatasets:
    @pytest.mark.parametrize("name", SCI_SAMPLE + GRAPH_SAMPLE)
    def test_spmv_matches_scipy(self, name):
        ds = load_dataset(name, scale=0.05)
        matrix = ds.matrix
        acc = Alrescha.from_matrix(KernelType.SPMV, matrix)
        rng = np.random.default_rng(3)
        x = rng.normal(size=matrix.shape[0])
        y, report = acc.run_spmv(x)
        np.testing.assert_allclose(y, matrix @ x, atol=1e-9)
        assert report.useful_bytes == matrix.nnz * 8
