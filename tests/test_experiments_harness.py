"""Smoke/structure tests for the experiment harness itself.

The benchmarks assert the paper-facing shapes; these tests pin the
harness's *contract* — keys, value ranges, dataset coverage — at a tiny
scale so refactors cannot silently change what the figures measure.
"""

import pytest

from repro.analysis import (
    SCIENTIFIC_SUITE,
    GRAPH_SUITE,
    fig3_pcg_breakdown,
    fig6_hpcg_fraction,
    fig15_pcg_speedup,
    fig16_sequential_fraction,
    fig17_graph_speedup,
    fig18_spmv_speedup,
    fig19_energy,
    full_spmv_comparison,
    parity_orderings,
)

TINY = 0.04
TWO_SCI = ["stencil27", "economics"]
TWO_GRAPH = ["Youtube", "roadNet-CA"]


class TestSuites:
    def test_suite_membership(self):
        from repro.datasets import list_datasets
        # The benchmarked suites are subsets of the registry (the
        # registry carries extra matrices beyond the calibrated suite).
        assert set(SCIENTIFIC_SUITE) <= set(list_datasets("scientific"))
        assert set(GRAPH_SUITE) == set(list_datasets("graph"))
        assert len(SCIENTIFIC_SUITE) == 10


class TestFigureContracts:
    def test_fig3_shares_sum_to_one(self):
        result = fig3_pcg_breakdown(scale=TINY)
        for platform in ("gpu", "alrescha"):
            assert sum(result[platform].values()) == pytest.approx(1.0)

    def test_fig6_keys_and_ranges(self):
        result = fig6_hpcg_fraction(datasets=TWO_SCI, scale=TINY)
        assert set(result) == {"cpu", "gpu"}
        for series in result.values():
            assert set(series) == set(TWO_SCI)
            assert all(0.0 < v < 1.0 for v in series.values())

    def test_fig15_contract(self):
        result = fig15_pcg_speedup(datasets=TWO_SCI, scale=TINY)
        assert set(result["alrescha_speedup"]) == set(TWO_SCI)
        for k in TWO_SCI:
            assert result["alrescha_speedup"][k] > 0
            assert 0.0 <= result["alrescha_bw_utilization"][k] <= 1.0
        assert result["summary"]["alrescha_mean"] > 0

    def test_fig16_contract(self):
        result = fig16_sequential_fraction(datasets=TWO_SCI, scale=TINY)
        for series in (result["gpu"], result["alrescha"]):
            assert all(0.0 <= v <= 1.0 for v in series.values())

    def test_fig17_contract(self):
        result = fig17_graph_speedup(datasets=TWO_GRAPH,
                                     algorithms=["bfs"], scale=TINY)
        assert set(result) == {"bfs"}
        rows = result["bfs"]
        assert set(rows["alrescha"]) == set(TWO_GRAPH)
        assert rows["summary"]["alrescha_mean"] > 0

    def test_fig18_contract(self):
        result = fig18_spmv_speedup(scientific=TWO_SCI, graph=TWO_GRAPH,
                                    scale=TINY)
        assert set(result["alrescha_speedup"]) == \
            set(TWO_SCI) | set(TWO_GRAPH)
        for frac in result["alrescha_cache_fraction"].values():
            assert 0.0 <= frac <= 1.0
        summary = result["summary"]
        assert summary["alrescha_scientific_mean"] > 0
        assert summary["alrescha_graph_mean"] > 0

    def test_fig19_contract(self):
        result = fig19_energy(datasets=TWO_SCI, scale=TINY)
        assert set(result["vs_cpu"]) == set(TWO_SCI)
        for k in TWO_SCI:
            assert result["vs_cpu"][k] > result["vs_gpu"][k] > 0
        assert result["summary"]["vs_cpu_gmean"] > 0


class TestParityContract:
    def test_table_structure(self):
        table = full_spmv_comparison(datasets=TWO_SCI + TWO_GRAPH,
                                     scale=TINY)
        assert set(table) == set(TWO_SCI + TWO_GRAPH)
        for row in table.values():
            assert row["gpu"] == 1.0
            assert {"cpu", "outerspace", "graphr", "memristive",
                    "alrescha"} <= set(row)

    def test_orderings_are_fractions(self):
        table = full_spmv_comparison(datasets=TWO_SCI, scale=TINY)
        orderings = parity_orderings(table)
        assert all(0.0 <= v <= 1.0 for v in orderings.values())

    def test_empty_table(self):
        assert parity_orderings({}) == {
            "alrescha_beats_gpu": 0.0,
            "alrescha_beats_cpu": 0.0,
            "alrescha_beats_outerspace": 0.0,
            "alrescha_beats_memristive": 0.0,
            "gpu_beats_cpu": 0.0,
        }
