"""Table 5: the Alrescha configuration, asserted field by field.

DESIGN.md's experiment index promises Table 5 is pinned by tests; this
file is that pin.  If a default drifts, the whole calibration story
drifts with it — fail loudly.
"""

import pytest

from repro.core import AlreschaConfig


@pytest.fixture(scope="module")
def config():
    return AlreschaConfig()


class TestTable5:
    def test_double_precision(self, config):
        """'Floating point: double precision (64 bits)'."""
        assert config.element_bytes == 8

    def test_clock_frequency(self, config):
        """'Clock frequency: 2.5 GHz'."""
        assert config.frequency_hz == pytest.approx(2.5e9)

    def test_cache_geometry(self, config):
        """'Cache: 1KB, 64-Byte lines, 4-cycle access latency'."""
        assert config.cache_bytes == 1024
        assert config.cache_line_bytes == 64
        assert config.cache_hit_latency == 4

    def test_re_latency(self, config):
        """'RE latency: 3 Cycles (sum: 3, min: 1)'."""
        assert config.re_sum_latency == 3
        assert config.re_min_latency == 1

    def test_alu_latency(self, config):
        """'ALU latency: 3 Cycles'."""
        assert config.alu_latency == 3

    def test_memory_bandwidth(self, config):
        """'Memory: 12 GB GDDR5, 288 GB/s'."""
        assert config.bandwidth_bytes_per_s == pytest.approx(288e9)
        assert config.bytes_per_cycle == pytest.approx(115.2)

    def test_operand_delivery_rate(self, config):
        """§5.2: 'each 64-bit operand of ALU is delivered from memory in
        0.4 ns' — one operand per 2.5 GHz cycle per lane."""
        cycle_s = 1.0 / config.frequency_hz
        assert cycle_s == pytest.approx(0.4e-9)

    def test_block_width_default(self, config):
        """§5.2: the paper picks omega = 8."""
        assert config.omega == 8

    def test_alu_row_keeps_up_with_memory(self, config):
        """The compute logic must 'follow the speed of streaming from
        memory': lane bandwidth >= channel bandwidth."""
        lane_bytes_per_s = config.n_alus * 8 * config.frequency_hz
        assert lane_bytes_per_s >= config.bandwidth_bytes_per_s

    def test_reconfig_hides_under_default_drain(self, config):
        """§4.4's design point holds for the default geometry: the sum
        tree's drain (3 levels x 3 cycles) covers the switch rewrite."""
        timing = config.timing()
        from repro.core import DataPathType
        assert timing.drain(DataPathType.GEMV) >= config.reconfig_cycles


class TestTable4Baselines:
    def test_gpu_k40c(self):
        """Table 4's GPU: K40c-class memory system."""
        from repro.baselines.gpu import GPU_BANDWIDTH, GPU_CUDA_CORES
        assert GPU_BANDWIDTH == pytest.approx(288e9)
        assert GPU_CUDA_CORES == 2880

    def test_cpu_xeon(self):
        """Table 4's CPU: Xeon E5-2630 v3-class."""
        from repro.baselines.cpu import CPU_BANDWIDTH, CPU_CORES, \
            CPU_FREQUENCY
        assert CPU_BANDWIDTH == pytest.approx(59e9)
        assert CPU_CORES == 8
        assert CPU_FREQUENCY == pytest.approx(2.4e9)

    def test_peer_accelerators_share_memory_budget(self):
        """§5.1: 'we assign all the accelerators the same computation
        and memory-bandwidth budget'."""
        from repro.baselines.graphr import GR_BANDWIDTH
        from repro.baselines.memristive import MEM_BANDWIDTH
        from repro.baselines.outerspace import OS_BANDWIDTH
        assert GR_BANDWIDTH == MEM_BANDWIDTH == OS_BANDWIDTH \
            == pytest.approx(288e9)

    def test_graphr_block_size(self):
        """Table 2: GraphR uses 4x4 COO blocks."""
        from repro.baselines.graphr import GR_BLOCK
        assert GR_BLOCK == 4

    def test_memristive_block_sizes(self):
        """Table 2: the Memristive accelerator uses 64..512 blocks."""
        from repro.baselines.memristive import MEM_BLOCK_WIDTHS
        assert MEM_BLOCK_WIDTHS == (64, 128, 256, 512)
