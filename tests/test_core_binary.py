"""Tests for the binary program interface (§4, Figure 7)."""

import numpy as np
import pytest

from repro.core import KernelType, convert
from repro.core.binary import (
    BitReader,
    BitWriter,
    decode_program,
    encode_program,
    program_size_bytes,
)
from repro.errors import ConfigError


class TestBitStream:
    def test_round_trip_values(self):
        w = BitWriter()
        w.write(5, 3)
        w.write(0, 1)
        w.write(1023, 10)
        r = BitReader(w.to_bytes())
        assert r.read(3) == 5
        assert r.read(1) == 0
        assert r.read(10) == 1023

    def test_value_too_wide_rejected(self):
        with pytest.raises(ConfigError):
            BitWriter().write(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            BitWriter().write(-1, 4)

    def test_truncated_read_rejected(self):
        w = BitWriter()
        w.write(1, 1)
        r = BitReader(w.to_bytes())
        r.read(1)
        with pytest.raises(ConfigError):
            r.read(16)

    def test_partial_byte_padding(self):
        w = BitWriter()
        w.write(0b101, 3)
        data = w.to_bytes()
        assert len(data) == 1
        assert data[0] == 0b10100000


class TestProgramRoundTrip:
    @pytest.mark.parametrize("kernel", [
        KernelType.SPMV, KernelType.BFS, KernelType.SSSP,
        KernelType.PAGERANK,
    ])
    def test_straightforward_kernels(self, spd_medium, kernel):
        conv = convert(kernel, spd_medium, omega=8)
        blob = encode_program(kernel, conv.table)
        k2, table2 = decode_program(blob)
        assert k2 is kernel
        assert len(table2) == len(conv.table)
        for a, b in zip(conv.table, table2):
            assert a == b

    def test_symgs_program(self, spd_medium):
        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        blob = encode_program(KernelType.SYMGS, conv.table)
        kernel, table2 = decode_program(blob)
        assert kernel is KernelType.SYMGS
        for a, b in zip(conv.table, table2):
            assert a == b

    def test_decoded_program_runs_identically(self, spd_medium, rng):
        """A table shipped through the binary produces bit-identical
        kernel results."""
        from repro.core import Alrescha
        from repro.core.convert import ConversionResult

        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        blob = encode_program(KernelType.SYMGS, conv.table)
        _k, table2 = decode_program(blob)
        conv2 = ConversionResult(
            kernel=conv.kernel, omega=conv.omega, table=table2,
            matrix=conv.matrix, bcsr=conv.bcsr, reordered=conv.reordered,
        )
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        acc1 = Alrescha()
        acc1.program(conv)
        acc2 = Alrescha()
        acc2.program(conv2)
        x1, _ = acc1.run_symgs_sweep(b, x0)
        x2, _ = acc2.run_symgs_sweep(b, x0)
        np.testing.assert_array_equal(x1, x2)


class TestBinarySize:
    def test_size_matches_paper_bit_budget(self, spd_medium):
        """Payload bits per entry = 2*ceil(log2(n/omega)) + 3 exactly."""
        conv = convert(KernelType.SPMV, spd_medium, omega=8)
        blob = encode_program(KernelType.SPMV, conv.table)
        assert len(blob) == program_size_bytes(conv.table)
        header = 15  # >IBIHI
        payload_bits = (len(blob) - header) * 8
        need = len(conv.table) * conv.table.entry_bits()
        assert need <= payload_bits < need + 8

    def test_program_is_small(self, spd_medium):
        """The one-time program is tiny relative to the payload the
        format would otherwise stream as meta-data every iteration."""
        conv = convert(KernelType.SPMV, spd_medium, omega=8)
        blob = encode_program(KernelType.SPMV, conv.table)
        payload_bytes = conv.matrix.payload_bytes
        assert len(blob) < payload_bytes


class TestBinaryValidation:
    def test_bad_magic(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=8)
        blob = bytearray(encode_program(KernelType.SPMV, conv.table))
        blob[0] ^= 0xFF
        with pytest.raises(ConfigError):
            decode_program(bytes(blob))

    def test_truncated_header(self):
        with pytest.raises(ConfigError):
            decode_program(b"\x41\x4c")

    def test_truncated_payload(self, spd_medium):
        conv = convert(KernelType.SPMV, spd_medium, omega=8)
        blob = encode_program(KernelType.SPMV, conv.table)
        with pytest.raises(ConfigError):
            decode_program(blob[: len(blob) // 2])

    def test_unknown_kernel_code(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=8)
        blob = bytearray(encode_program(KernelType.SPMV, conv.table))
        blob[4] = 0xEE  # kernel code byte
        with pytest.raises(ConfigError):
            decode_program(bytes(blob))

    def test_invalid_kernel_rejected(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=8)
        with pytest.raises(ConfigError):
            encode_program("spmv", conv.table)
