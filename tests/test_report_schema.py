"""Report-schema golden snapshot: drift is caught like trace drift.

``repro serve --report-json`` and the fleet equivalent promise a
*canonical* encoding — sorted keys, fixed separators, trailing
newline — so byte-equality is field-equality and CI can diff reports
across runs.  That promise is only useful if the schema itself is
pinned: a silently added, removed or renamed field would invalidate
every stored report downstream.  This suite compares the live
dataclasses against ``tests/data/report_schema_golden.json``
(regenerate deliberately with ``regen_report_schema.py``), mirroring
how ``test_trace_schema`` pins the trace envelope.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.runtime import serve, serve_fleet
from repro.runtime.fleet import FleetConfig, fleet_report_json
from repro.runtime.metrics import report_json

GOLDEN = pathlib.Path(__file__).parent / "data" / \
    "report_schema_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def pool_report(golden):
    _, report = serve(execution="model", **golden["snapshot_case"])
    return report


@pytest.fixture(scope="module")
def fleet_report(golden):
    _, report = serve_fleet(execution="model",
                            fleet_config=FleetConfig(n_pools=2),
                            **golden["snapshot_case"])
    return report


class TestKeyOrder:
    """Canonical JSON emits sorted dataclass fields; the golden file
    pins exactly which fields exist.  A mismatch means the report
    schema changed — regenerate the golden *deliberately* and note the
    change in API.md."""

    def test_poolreport_keys_pinned(self, golden, pool_report):
        payload = json.loads(report_json(pool_report))
        assert list(payload) == golden["poolreport_keys"]

    def test_devicestats_keys_pinned(self, golden, pool_report):
        payload = json.loads(report_json(pool_report))
        for device in payload["devices"]:
            assert list(device) == golden["devicestats_keys"]

    def test_fleetreport_keys_pinned(self, golden, fleet_report):
        payload = json.loads(fleet_report_json(fleet_report))
        assert list(payload) == golden["fleetreport_keys"]

    def test_poolstats_keys_pinned(self, golden, fleet_report):
        payload = json.loads(fleet_report_json(fleet_report))
        for stats in payload["pool_stats"]:
            assert list(stats) == golden["poolstats_keys"]
        # Nested per-pool reports carry the full PoolReport schema.
        for stats in payload["pool_stats"]:
            assert list(stats["report"]) == golden["poolreport_keys"]


class TestCanonicalEncoding:
    def test_report_json_is_canonical(self, pool_report):
        payload = report_json(pool_report)
        assert payload == json.dumps(
            json.loads(payload), sort_keys=True,
            separators=(",", ":")) + "\n"

    def test_fleet_report_json_is_canonical(self, fleet_report):
        payload = fleet_report_json(fleet_report)
        assert payload == json.dumps(
            json.loads(payload), sort_keys=True,
            separators=(",", ":")) + "\n"


class TestSnapshot:
    def test_fleet_snapshot_field_identical(self, golden, fleet_report):
        """Full value-level golden: the pinned model-execution fleet
        run must reproduce every field exactly (the same contract the
        PoolReport fingerprint corpus pins for solo pools)."""
        assert (json.loads(fleet_report_json(fleet_report))
                == golden["fleet_snapshot"])
