"""Unit tests for the counter set."""

from collections import Counter

import pytest

from repro.sim import CounterSet


class TestCounterSet:
    def test_add_and_get(self):
        c = CounterSet()
        c.add("alu_op")
        c.add("alu_op", 4)
        assert c.get("alu_op") == pytest.approx(5.0)

    def test_missing_counter_defaults_to_zero(self):
        c = CounterSet()
        assert c.get("nope") == 0.0
        assert c["nope"] == 0.0
        assert "nope" not in c

    def test_initial_mapping(self):
        c = CounterSet({"a": 1.0, "b": 2.0})
        assert c["a"] == 1.0
        assert len(c) == 2

    def test_merge_plain(self):
        a = CounterSet({"x": 1.0})
        b = CounterSet({"x": 2.0, "y": 3.0})
        a.merge(b)
        assert a["x"] == pytest.approx(3.0)
        assert a["y"] == pytest.approx(3.0)

    def test_merge_with_prefix(self):
        a = CounterSet()
        a.merge(CounterSet({"hits": 7.0}), prefix="cache.")
        assert a["cache.hits"] == 7.0
        assert a["hits"] == 0.0

    def test_scaled_returns_new_set(self):
        c = CounterSet({"e": 2.0})
        s = c.scaled(10)
        assert s["e"] == 20.0
        assert c["e"] == 2.0

    def test_add_operator(self):
        total = CounterSet({"a": 1.0}) + CounterSet({"a": 2.0, "b": 1.0})
        assert total["a"] == 3.0
        assert total["b"] == 1.0

    def test_as_dict_is_copy(self):
        c = CounterSet({"a": 1.0})
        d = c.as_dict()
        d["a"] = 99.0
        assert c["a"] == 1.0

    def test_reset(self):
        c = CounterSet({"a": 1.0})
        c.reset()
        assert len(c) == 0

    def test_from_counter(self):
        c = CounterSet.from_counter(Counter(["x", "x", "y"]))
        assert c["x"] == 2.0
        assert c["y"] == 1.0

    def test_iteration(self):
        c = CounterSet({"a": 1.0, "b": 2.0})
        assert sorted(c) == ["a", "b"]
        assert dict(c.items()) == {"a": 1.0, "b": 2.0}

    def test_add_many(self):
        c = CounterSet({"a": 1.0})
        c.add_many({"a": 2.0, "b": 0.5})
        assert c["a"] == 3.0
        assert c["b"] == 0.5

    def test_add_many_empty_is_noop(self):
        c = CounterSet({"a": 1.0})
        c.add_many({})
        assert c.as_dict() == {"a": 1.0}

    def test_copy_is_independent(self):
        c = CounterSet({"a": 1.0})
        d = c.copy()
        d.add("a", 5.0)
        d.add("b")
        assert c.as_dict() == {"a": 1.0}
        assert d["a"] == 6.0 and d["b"] == 1.0


class TestCounterSetDiff:
    def test_diff_returns_accumulated_delta(self):
        base = CounterSet({"alu_op": 10.0, "dram_bytes": 512.0})
        live = CounterSet({"alu_op": 15.0, "dram_bytes": 512.0,
                           "cache_hits": 3.0})
        delta = live.diff(base)
        assert delta.as_dict() == {"alu_op": 5.0, "cache_hits": 3.0}

    def test_diff_drops_exact_zeros(self):
        base = CounterSet({"a": 1.0, "b": 2.0})
        delta = CounterSet({"a": 1.0, "b": 5.0}).diff(base)
        assert "a" not in delta
        assert delta["b"] == 3.0

    def test_diff_keeps_negative_deltas(self):
        # A counter that shrank means the set was reset mid-span; the
        # delta must expose that instead of clamping it away.
        base = CounterSet({"a": 5.0, "gone": 2.0})
        delta = CounterSet({"a": 1.0}).diff(base)
        assert delta["a"] == -4.0
        assert delta["gone"] == -2.0

    def test_diff_of_snapshot_pattern(self):
        # The tracer's usage: snapshot at span open, diff at close.
        live = CounterSet({"x": 1.0})
        snapshot = live.copy()
        live.add("x", 2.0)
        live.add("y", 7.0)
        assert live.diff(snapshot).as_dict() == {"x": 2.0, "y": 7.0}

    def test_sub_operator_matches_diff(self):
        a = CounterSet({"a": 3.0})
        b = CounterSet({"a": 1.0, "b": 1.0})
        assert (a - b).as_dict() == a.diff(b).as_dict() == \
            {"a": 2.0, "b": -1.0}

    def test_diff_does_not_mutate_operands(self):
        a = CounterSet({"a": 3.0})
        b = CounterSet({"a": 1.0})
        a.diff(b)
        assert a.as_dict() == {"a": 3.0}
        assert b.as_dict() == {"a": 1.0}
