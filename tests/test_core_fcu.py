"""Unit tests for the fixed compute unit (§4.3)."""

import numpy as np
import pytest

from repro.core import FixedComputeUnit
from repro.errors import SimulationError


class TestConstruction:
    def test_defaults(self):
        fcu = FixedComputeUnit()
        assert fcu.omega == 8
        assert fcu.alu_latency == 3
        assert fcu.re_sum_latency == 3
        assert fcu.re_min_latency == 1

    def test_omega_must_be_power_of_two(self):
        with pytest.raises(SimulationError):
            FixedComputeUnit(omega=6)
        with pytest.raises(SimulationError):
            FixedComputeUnit(omega=0)

    def test_alu_row_must_fit_a_slice(self):
        with pytest.raises(SimulationError):
            FixedComputeUnit(omega=16, n_alus=8)


class TestFunctional:
    def test_vector_mul(self):
        fcu = FixedComputeUnit()
        a = np.arange(8.0)
        b = np.full(8, 2.0)
        np.testing.assert_allclose(fcu.vector_op(a, b, "mul"), a * b)

    def test_vector_add(self):
        fcu = FixedComputeUnit()
        a = np.arange(8.0)
        np.testing.assert_allclose(fcu.vector_op(a, a, "add"), 2 * a)

    def test_and_div_selects_where_nonzero(self):
        fcu = FixedComputeUnit()
        a = np.array([1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
        b = np.full(8, 5.0)
        out = fcu.vector_op(a, b, "and_div")
        np.testing.assert_allclose(out, a * 5.0)

    def test_reduce_sum(self):
        fcu = FixedComputeUnit()
        assert fcu.reduce(np.arange(8.0), "sum") == pytest.approx(28.0)

    def test_reduce_min(self):
        fcu = FixedComputeUnit()
        assert fcu.reduce(np.array([3.0, 1.0, 2.0]), "min") == 1.0

    def test_reduce_min_empty_is_inf(self):
        fcu = FixedComputeUnit()
        assert fcu.reduce(np.zeros(0), "min") == np.inf

    def test_dot(self):
        fcu = FixedComputeUnit()
        a, b = np.arange(8.0), np.ones(8)
        assert fcu.dot(a, b) == pytest.approx(28.0)

    def test_unknown_ops_rejected(self):
        fcu = FixedComputeUnit()
        with pytest.raises(SimulationError):
            fcu.vector_op(np.zeros(8), np.zeros(8), "xor")
        with pytest.raises(SimulationError):
            fcu.reduce(np.zeros(8), "max")

    def test_shape_mismatch_rejected(self):
        fcu = FixedComputeUnit()
        with pytest.raises(SimulationError):
            fcu.vector_op(np.zeros(8), np.zeros(4))


class TestActivityCounting:
    def test_alu_activity_scales_with_density(self):
        """'The activity of compute units, defined by the density of the
        locally-dense block, impacts energy but not performance' (§5.4)."""
        fcu = FixedComputeUnit()
        sparse = np.zeros(8)
        sparse[0] = 1.0
        fcu.vector_op(sparse, np.ones(8))
        assert fcu.counters.get("alu_op") == 1.0
        fcu.vector_op(np.ones(8), np.ones(8))
        assert fcu.counters.get("alu_op") == 9.0

    def test_reduce_activity(self):
        fcu = FixedComputeUnit()
        fcu.reduce(np.ones(8))
        assert fcu.counters.get("re_op") == 7.0


class TestTiming:
    def test_tree_depth(self):
        assert FixedComputeUnit(omega=8).tree_depth == 3
        assert FixedComputeUnit(omega=16, n_alus=16).tree_depth == 4

    def test_pipeline_latency_sum(self):
        fcu = FixedComputeUnit()
        # ALU(3) + 3 levels x RE_sum(3) = 12.
        assert fcu.pipeline_latency("sum") == 12

    def test_pipeline_latency_min_cheaper(self):
        """Table 5: RE latency is 3 for sum, 1 for min."""
        fcu = FixedComputeUnit()
        assert fcu.pipeline_latency("min") == 6
        assert fcu.pipeline_latency("min") < fcu.pipeline_latency("sum")

    def test_drain_is_tree_only(self):
        fcu = FixedComputeUnit()
        assert fcu.drain_cycles("sum") == 9
        assert fcu.drain_cycles("min") == 3

    def test_compute_bandwidth_matches_memory(self):
        """§5.2: the ALU row is sized to keep up with the 288 GB/s
        stream (115.2 B/cycle at 2.5 GHz)."""
        fcu = FixedComputeUnit()
        assert fcu.compute_bytes_per_cycle >= 115.2
