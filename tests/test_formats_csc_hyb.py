"""Unit tests for the CSC and HYB formats."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import COOMatrix, CSCMatrix, CSRMatrix, HYBMatrix


class TestCSC:
    def test_round_trip(self, spd_small):
        csc = CSCMatrix.from_dense(spd_small)
        np.testing.assert_allclose(csc.to_dense(), spd_small)

    def test_spmv(self, spd_medium, rng):
        csc = CSCMatrix.from_dense(spd_medium)
        x = rng.normal(size=70)
        np.testing.assert_allclose(csc.spmv(x), spd_medium @ x)

    def test_column_access(self, spd_small):
        csc = CSCMatrix.from_dense(spd_small)
        rows, vals = csc.column(0)
        expected = np.nonzero(spd_small[:, 0])[0]
        np.testing.assert_array_equal(rows, expected)
        np.testing.assert_allclose(vals, spd_small[expected, 0])

    def test_transpose_view_as_csr(self, spd_small):
        csc = CSCMatrix.from_dense(spd_small)
        csr_t = csc.transpose_view_as_csr()
        np.testing.assert_allclose(csr_t.to_dense(), spd_small.T)

    def test_csc_of_symmetric_equals_csr(self, spd_small):
        """For symmetric matrices CSC and CSR hold the same arrays."""
        csc = CSCMatrix.from_dense(spd_small)
        csr = CSRMatrix.from_dense(spd_small)
        np.testing.assert_array_equal(csc.indptr, csr.indptr)
        np.testing.assert_array_equal(csc.indices, csr.indices)

    def test_validation(self):
        with pytest.raises(FormatError):
            CSCMatrix((2, 2), [0, 1], [0], [1.0])
        with pytest.raises(FormatError):
            CSCMatrix((2, 2), [0, 1, 1], [5], [1.0])

    def test_metadata_mirrors_csr(self, spd_small):
        csc = CSCMatrix.from_dense(spd_small)
        csr = CSRMatrix.from_dense(spd_small)
        assert csc.metadata_bits() == csr.metadata_bits()


class TestHYB:
    @pytest.fixture
    def skewed(self):
        """One hub row on an otherwise regular matrix."""
        dense = np.zeros((16, 16))
        idx = np.arange(15)
        dense[idx, idx + 1] = 1.0
        dense[0, :] = 2.0  # hub row
        return dense

    def test_round_trip(self, skewed):
        hyb = HYBMatrix.from_dense(skewed)
        np.testing.assert_allclose(hyb.to_dense(), skewed)

    def test_spmv(self, skewed, rng):
        hyb = HYBMatrix.from_dense(skewed)
        x = rng.normal(size=16)
        np.testing.assert_allclose(hyb.spmv(x), skewed @ x)

    def test_overflow_absorbs_hub_tail(self, skewed):
        hyb = HYBMatrix.from_dense(skewed)
        assert hyb.overflow.nnz > 0
        assert 0.0 < hyb.overflow_fraction < 1.0

    def test_regular_matrix_has_no_overflow(self, banded_spd):
        hyb = HYBMatrix.from_dense(banded_spd,
                                   ell_width=int(np.max(
                                       (banded_spd != 0).sum(axis=1))))
        assert hyb.overflow.nnz == 0

    def test_width_zero_puts_all_in_coo(self, skewed):
        hyb = HYBMatrix.from_dense(skewed, ell_width=0)
        assert hyb.overflow_fraction == 1.0
        np.testing.assert_allclose(hyb.to_dense(), skewed)

    def test_metadata_between_ell_and_csr_for_skew(self, skewed):
        """HYB's raison d'etre: cheaper than pure ELL on skewed rows."""
        from repro.formats import ELLMatrix
        hyb = HYBMatrix.from_dense(skewed)
        ell = ELLMatrix.from_dense(skewed)
        assert hyb.metadata_bits() < ell.metadata_bits()

    def test_nnz_consistent(self, skewed):
        hyb = HYBMatrix.from_dense(skewed)
        assert hyb.nnz == int(np.count_nonzero(skewed))

    def test_shape_mismatch_rejected(self):
        from repro.formats import ELLMatrix
        ell = ELLMatrix.from_dense(np.eye(3))
        coo = COOMatrix.from_dense(np.eye(4))
        with pytest.raises(FormatError):
            HYBMatrix(ell, coo)
