"""Tests for the extension modules: connected components, HPCG driver,
sensitivity sweeps, roofline analysis, kernel-switch accounting."""

import numpy as np
import pytest

from repro.analysis import (
    bandwidth_sweep,
    cache_sweep,
    dsymgs_latency_sweep,
    omega_bandwidth_matrix,
    roofline_summary,
    spmv_roofline,
)
from repro.datasets import load_dataset, road_grid, stencil27
from repro.graph import (
    connected_components,
    connected_components_reference,
)
from repro.solvers import AcceleratorBackend, hpcg_flops, pcg, run_hpcg


class TestConnectedComponents:
    def test_reference_on_two_islands(self):
        import scipy.sparse as sp
        edges = ([0, 1, 3], [1, 2, 4])
        adj = sp.coo_matrix((np.ones(3), edges), shape=(6, 6)).tocsr()
        labels = connected_components_reference(adj)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[5] not in (labels[0], labels[3])

    def test_accelerated_matches_reference(self, random_digraph):
        ref = connected_components_reference(random_digraph)
        result = connected_components(random_digraph)
        np.testing.assert_array_equal(result.labels, ref)
        assert result.n_components == np.unique(ref).size
        assert result.report.cycles > 0

    def test_matches_networkx(self, random_digraph):
        import networkx as nx
        g = nx.Graph()
        g.add_nodes_from(range(60))
        coo = random_digraph.tocoo()
        g.add_edges_from(zip(coo.row, coo.col))
        result = connected_components(random_digraph)
        assert result.n_components == nx.number_connected_components(g)

    def test_connected_grid_is_one_component(self):
        adj = road_grid(6, 6, seed=1)
        result = connected_components(adj)
        assert result.n_components == 1

    def test_directionality_ignored(self):
        """Weak connectivity: a one-way chain is one component."""
        import scipy.sparse as sp
        adj = sp.coo_matrix(
            (np.ones(4), ([0, 1, 2, 3], [1, 2, 3, 4])), shape=(5, 5)
        ).tocsr()
        result = connected_components(adj)
        assert result.n_components == 1


class TestHPCGDriver:
    def test_rating_positive(self):
        result = run_hpcg(6, 6, 6, iterations=5)
        assert result.gflops > 0
        assert result.n == 216
        assert result.iterations == 5
        assert 0 < result.bandwidth_utilization < 1

    def test_flop_accounting(self):
        assert hpcg_flops(nnz=100, n=10, iterations=2) == \
            pytest.approx(2 * (600 + 120))

    def test_fraction_of_peak_tiny_even_for_alrescha(self):
        """Alrescha wins by *effective* bandwidth, not by approaching a
        compute peak — HPCG stays memory-bound on every platform."""
        result = run_hpcg(6, 6, 6, iterations=5)
        from repro.baselines.gpu import GPU_PEAK_DP_FLOPS
        assert result.fraction_of_peak(GPU_PEAK_DP_FLOPS) < 0.2

    def test_convergent_mode(self):
        result = run_hpcg(5, 5, 5, iterations=60, tol=1e-9)
        assert result.converged
        assert result.final_residual < 1e-9


class TestSensitivity:
    @pytest.fixture(scope="class")
    def matrix(self):
        return stencil27(6, 6, 6)

    def test_bandwidth_scaling_contrast(self, matrix):
        """SpMV scales with bandwidth; SymGS saturates on its chain."""
        sweep = bandwidth_sweep(matrix, [144e9, 576e9])
        spmv_gain = sweep[576e9]["spmv_speedup_vs_base"]
        symgs_gain = sweep[576e9]["symgs_speedup_vs_base"]
        assert spmv_gain > 2.5          # near the 4x bandwidth ratio
        assert symgs_gain < spmv_gain   # the dependent chain saturates

    def test_bandwidth_monotone(self, matrix):
        sweep = bandwidth_sweep(matrix, [144e9, 288e9, 576e9])
        cycles = [sweep[bw]["spmv_cycles"] for bw in (144e9, 288e9, 576e9)]
        assert cycles[0] > cycles[1] > cycles[2]

    def test_cache_sweep_hit_rate_monotone(self, matrix):
        sweep = cache_sweep(matrix, [256, 4096])
        assert sweep[4096]["hit_rate"] >= sweep[256]["hit_rate"]
        assert sweep[4096]["streamed_bytes"] <= sweep[256]["streamed_bytes"]

    def test_dsymgs_latency_monotone(self, matrix):
        sweep = dsymgs_latency_sweep(matrix, [1, 4, 16])
        assert sweep[1]["sweep_cycles"] < sweep[4]["sweep_cycles"] \
            < sweep[16]["sweep_cycles"]
        assert sweep[16]["sequential_fraction"] > \
            sweep[1]["sequential_fraction"]

    def test_omega_bandwidth_grid(self, matrix):
        grid = omega_bandwidth_matrix(matrix, [8, 16], [144e9, 576e9])
        for omega in (8, 16):
            assert grid[omega][144e9] >= grid[omega][576e9]


class TestRoofline:
    def test_points_structurally_sane(self):
        matrix = load_dataset("stencil27", scale=0.1).matrix
        points = spmv_roofline(matrix)
        for name in ("cpu", "gpu", "alrescha"):
            p = points[name]
            assert p.arithmetic_intensity > 0
            assert p.achieved_gflops > 0
            assert p.efficiency <= 1.0

    def test_spmv_is_memory_bound_everywhere(self):
        """AI x BW << peak FLOPs on every platform: the memory roof."""
        from repro.baselines.cpu import CPU_PEAK_DP_FLOPS
        from repro.baselines.gpu import GPU_PEAK_DP_FLOPS
        matrix = load_dataset("stencil27", scale=0.1).matrix
        points = spmv_roofline(matrix)
        assert points["cpu"].attainable_gflops * 1e9 < CPU_PEAK_DP_FLOPS
        assert points["gpu"].attainable_gflops * 1e9 < GPU_PEAK_DP_FLOPS

    def test_alrescha_highest_efficiency(self):
        """Alrescha runs closest to its attainable roofline — that is
        the whole design argument."""
        matrix = load_dataset("stencil27", scale=0.1).matrix
        summary = roofline_summary(matrix)
        assert summary["alrescha"]["efficiency"] > \
            summary["gpu"]["efficiency"]
        assert summary["alrescha"]["efficiency"] > \
            summary["cpu"]["efficiency"]

    def test_alrescha_achieves_most_gflops(self):
        matrix = load_dataset("stencil27", scale=0.1).matrix
        summary = roofline_summary(matrix)
        assert summary["alrescha"]["achieved_gflops"] > \
            summary["gpu"]["achieved_gflops"]


class TestKernelSwitchAccounting:
    def test_pcg_counts_switches(self, banded_spd, rng):
        backend = AcceleratorBackend(banded_spd)
        b = rng.normal(size=40)
        result = pcg(backend, b, tol=1e-8, max_iter=30)
        assert result.converged
        # Each iteration alternates spmv <-> symgs at least once.
        assert backend.kernel_switches >= result.iterations

    def test_switches_hidden_by_default(self, banded_spd, rng):
        backend = AcceleratorBackend(banded_spd)
        pcg(backend, rng.normal(size=40), tol=1e-8, max_iter=20)
        switch_cycles = sum(
            r.cycles for r in backend._reports
            if r.kernel == "kernel-switch"
        )
        assert switch_cycles == 0.0

    def test_switches_exposed_with_ablation(self, banded_spd, rng):
        from repro.core import AlreschaConfig
        config = AlreschaConfig(hide_reconfig_under_drain=False)
        backend = AcceleratorBackend(banded_spd, config=config)
        pcg(backend, rng.normal(size=40), tol=1e-8, max_iter=20)
        switch_cycles = sum(
            r.cycles for r in backend._reports
            if r.kernel == "kernel-switch"
        )
        assert switch_cycles > 0.0

    def test_reset_clears_switch_state(self, banded_spd, rng):
        backend = AcceleratorBackend(banded_spd)
        pcg(backend, rng.normal(size=40), tol=1e-8, max_iter=5)
        backend.reset_reports()
        assert backend.kernel_switches == 0
