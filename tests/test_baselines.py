"""Tests for the baseline platform models and coloring analysis."""

import numpy as np
import pytest

from repro.baselines import (
    CPUModel,
    GPUModel,
    GraphRModel,
    MatrixProfile,
    MemristiveModel,
    OuterSPACEModel,
    alrescha_sequential_fraction,
    gauss_seidel_levels,
    gpu_sequential_fraction,
    greedy_coloring,
    level_histogram,
)
from repro.datasets import stencil27, tridiagonal
from repro.errors import BaselineError


class TestLevelScheduling:
    def test_tridiagonal_is_fully_sequential(self):
        levels = gauss_seidel_levels(tridiagonal(20).toarray())
        np.testing.assert_array_equal(levels, np.arange(20))

    def test_diagonal_matrix_single_level(self):
        levels = gauss_seidel_levels(np.eye(10))
        np.testing.assert_array_equal(levels, 0)

    def test_level_depends_only_on_lower_triangle(self):
        a = np.eye(4)
        a[0, 3] = 1.0  # upper-triangle entry: no dependency
        levels = gauss_seidel_levels(a)
        np.testing.assert_array_equal(levels, 0)

    def test_level_histogram(self):
        hist = level_histogram(np.array([0, 0, 1, 2, 2, 2]))
        assert hist == {0: 2, 1: 1, 2: 3}


class TestColoring:
    def test_coloring_is_proper(self, spd_medium):
        colors = greedy_coloring(spd_medium)
        n = spd_medium.shape[0]
        for i in range(n):
            for j in range(n):
                if i != j and spd_medium[i, j] != 0.0:
                    assert colors[i] != colors[j]

    def test_diagonal_matrix_one_color(self):
        colors = greedy_coloring(np.eye(8))
        assert set(colors) == {0}


class TestSequentialFractions:
    def test_tridiagonal_gpu_fraction_near_one(self):
        frac, levels = gpu_sequential_fraction(tridiagonal(64).toarray())
        assert frac > 0.95
        assert levels == 64

    def test_independent_rows_fraction_low(self):
        # Block-diagonal with 64 independent singleton rows.
        frac, levels = gpu_sequential_fraction(np.eye(64) * 2.0)
        assert levels == 1
        assert frac < 0.5

    def test_alrescha_fraction_excludes_main_diagonal(self):
        """A diagonal matrix has no sequential dot-product work at all —
        the diagonal is stored separately and fed to the PE divide."""
        assert alrescha_sequential_fraction(np.eye(16) * 2.0) == 0.0

    def test_alrescha_fraction_below_gpu_on_stencil(self):
        a = stencil27(6, 6, 6)
        gpu_frac, _ = gpu_sequential_fraction(a)
        alr_frac = alrescha_sequential_fraction(a)
        assert alr_frac < gpu_frac

    def test_tridiagonal_alrescha_still_sequential(self):
        """In-block chains remain: Alrescha cannot parallelise a pure
        chain, it can only shrink the sequential operand."""
        frac = alrescha_sequential_fraction(tridiagonal(64).toarray())
        assert frac > 0.8


class TestMatrixProfile:
    @pytest.fixture
    def profile(self):
        return MatrixProfile(stencil27(6, 6, 6))

    def test_basic_counts(self, profile):
        assert profile.n == 216
        assert profile.nnz > 0
        assert 0.0 < profile.block_density <= 1.0

    def test_locality_ordering(self, random_digraph):
        banded = MatrixProfile(tridiagonal(216).toarray())
        scattered = MatrixProfile(random_digraph)
        assert banded.column_locality > scattered.column_locality

    def test_row_imbalance_bounds(self, profile, random_digraph):
        assert 1.0 <= profile.row_imbalance <= 2.5
        assert 1.0 <= MatrixProfile(random_digraph).row_imbalance <= 2.5

    def test_blocks_at_density(self, profile):
        blocks = profile.blocks_at(64)
        assert blocks >= 1
        assert 0.0 < profile.density_at(64) <= 1.0
        with pytest.raises(BaselineError):
            profile.blocks_at(0)


class TestPlatformModels:
    @pytest.fixture
    def profile(self):
        return MatrixProfile(stencil27(6, 6, 6))

    def test_all_models_positive_spmv_time(self, profile):
        for model in (CPUModel(), GPUModel(), OuterSPACEModel(),
                      GraphRModel(), MemristiveModel()):
            assert model.spmv_seconds(profile) > 0.0

    def test_gpu_faster_than_cpu_spmv(self, profile):
        assert GPUModel().spmv_seconds(profile) < \
            CPUModel().spmv_seconds(profile)

    def test_symgs_slower_than_spmv_on_gpu(self, profile):
        """The data-dependent kernel is the GPU's bottleneck."""
        gpu = GPUModel()
        assert gpu.symgs_sweep_seconds(profile) > gpu.spmv_seconds(profile)

    def test_pcg_iteration_composition(self, profile):
        gpu = GPUModel()
        total = gpu.pcg_iteration_seconds(profile)
        assert total > 2.0 * gpu.symgs_sweep_seconds(profile)

    def test_hpcg_fraction_tiny(self, profile):
        """Figure 6: platforms reach only a tiny fraction of peak."""
        assert CPUModel().hpcg_fraction_of_peak(profile) < 0.05
        assert GPUModel().hpcg_fraction_of_peak(profile) < 0.05

    def test_ell_vs_csr_selection(self, profile, random_digraph):
        gpu = GPUModel()
        assert gpu.storage_format(profile) == "ell"
        skewed = MatrixProfile(random_digraph)
        # One dense-ish row forces huge padding -> CSR fallback.
        dense_row = random_digraph.toarray()
        dense_row[0, :] = 1.0
        assert gpu.storage_format(MatrixProfile(dense_row)) == "csr"
        del skewed

    def test_graph_models_reject_unknown_algorithm(self, profile):
        with pytest.raises(BaselineError):
            CPUModel().graph_pass_seconds(profile, "pagerook")
        with pytest.raises(BaselineError):
            GPUModel().graph_pass_seconds(profile, "bfsx")

    def test_outerspace_cache_fraction_dominates(self, profile):
        """Figure 18's line series: OuterSPACE spends most of its time
        on cache accesses."""
        os_model = OuterSPACEModel()
        assert os_model.cache_time_fraction(profile) > 0.5

    def test_memristive_block_choice(self, profile):
        mem = MemristiveModel()
        assert mem.best_block_width(profile) in (64, 128, 256, 512)

    def test_memristive_symgs_serial_penalty(self, profile):
        mem = MemristiveModel()
        assert mem.symgs_sweep_seconds(profile) > mem.spmv_seconds(profile)

    def test_energy_ordering(self, profile):
        """CPU > GPU >> accelerators per edge (Figure 19's premise)."""
        cpu_e = CPUModel().spmv_energy(profile)
        gpu_e = GPUModel().spmv_energy(profile)
        os_e = OuterSPACEModel().spmv_energy(profile)
        assert cpu_e > gpu_e > os_e

    def test_baseline_without_symgs_raises(self, profile):
        with pytest.raises(BaselineError):
            OuterSPACEModel().symgs_sweep_seconds(profile)
