"""Unit tests for SimReport and report combination."""

import pytest

from repro.core import SimReport, combine
from repro.sim import CounterSet


def make_report(cycles=100.0, useful=576.0, streamed=1152.0, seq=20.0):
    return SimReport(
        kernel="spmv",
        cycles=cycles,
        useful_bytes=useful,
        streamed_bytes=streamed,
        sequential_cycles=seq,
        cache_busy_cycles=10.0,
        n_entries=5,
        n_switches=2,
        counters=CounterSet({"alu_op": 7.0}),
        energy_j=1e-9,
        datapath_cycles={"gemv": 80.0},
        bytes_per_cycle=115.2,
    )


class TestDerivedMetrics:
    def test_seconds(self):
        r = make_report(cycles=2.5e9)
        assert r.seconds == pytest.approx(1.0)

    def test_bandwidth_utilization(self):
        r = make_report(cycles=10.0, useful=576.0)
        assert r.bandwidth_utilization == pytest.approx(576 / 1152)

    def test_utilization_capped_at_one(self):
        r = make_report(cycles=1.0, useful=1e6)
        assert r.bandwidth_utilization == 1.0

    def test_stream_utilization_above_useful(self):
        r = make_report(cycles=20.0)
        assert r.stream_utilization >= r.bandwidth_utilization

    def test_sequential_fraction(self):
        r = make_report(cycles=100.0, seq=25.0)
        assert r.sequential_fraction == pytest.approx(0.25)

    def test_cache_time_fraction(self):
        r = make_report(cycles=100.0)
        assert r.cache_time_fraction == pytest.approx(0.1)

    def test_zero_cycles_safe(self):
        r = SimReport(kernel="empty")
        assert r.bandwidth_utilization == 0.0
        assert r.sequential_fraction == 0.0
        assert r.cache_time_fraction == 0.0


class TestScaling:
    def test_scaled_multiplies_extensives(self):
        r = make_report().scaled(10)
        assert r.cycles == pytest.approx(1000.0)
        assert r.useful_bytes == pytest.approx(5760.0)
        assert r.energy_j == pytest.approx(1e-8)
        assert r.counters.get("alu_op") == pytest.approx(70.0)
        assert r.datapath_cycles["gemv"] == pytest.approx(800.0)

    def test_scaled_preserves_intensives(self):
        r = make_report()
        s = r.scaled(7)
        assert s.bandwidth_utilization == pytest.approx(
            r.bandwidth_utilization)
        assert s.sequential_fraction == pytest.approx(r.sequential_fraction)


class TestCombine:
    def test_combine_sums(self):
        total = combine([make_report(), make_report()])
        assert total.cycles == pytest.approx(200.0)
        assert total.n_entries == 10
        assert total.counters.get("alu_op") == 14.0
        assert total.datapath_cycles["gemv"] == pytest.approx(160.0)

    def test_combine_kernel_name(self):
        total = combine([make_report()], kernel="pcg")
        assert total.kernel == "pcg"

    def test_combine_empty(self):
        total = combine([])
        assert total.cycles == 0.0
        assert total.kernel == "empty"
