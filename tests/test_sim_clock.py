"""Unit tests for the cycle clock."""

import pytest

from repro.errors import SimulationError
from repro.sim import Clock, DEFAULT_FREQUENCY_HZ


class TestClockBasics:
    def test_default_frequency_matches_table5(self):
        assert Clock().frequency_hz == pytest.approx(2.5e9)
        assert DEFAULT_FREQUENCY_HZ == pytest.approx(2.5e9)

    def test_starts_at_zero(self):
        assert Clock().cycles == 0.0
        assert Clock().seconds == 0.0

    def test_advance_accumulates(self):
        clk = Clock()
        clk.advance(10)
        clk.advance(5.5)
        assert clk.cycles == pytest.approx(15.5)

    def test_advance_returns_total(self):
        clk = Clock()
        assert clk.advance(3) == pytest.approx(3)
        assert clk.advance(4) == pytest.approx(7)

    def test_seconds_conversion(self):
        clk = Clock(frequency_hz=1e9)
        clk.advance(2e9)
        assert clk.seconds == pytest.approx(2.0)

    def test_cycle_time(self):
        assert Clock(frequency_hz=2.5e9).cycle_time_s() == pytest.approx(0.4e-9)

    def test_round_trip_conversions(self):
        clk = Clock(frequency_hz=3e9)
        assert clk.to_seconds(clk.to_cycles(1.5)) == pytest.approx(1.5)

    def test_reset(self):
        clk = Clock()
        clk.advance(100)
        clk.reset()
        assert clk.cycles == 0.0


class TestClockErrors:
    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            Clock().advance(-1)

    @pytest.mark.parametrize("freq", [0.0, -1.0])
    def test_invalid_frequency_rejected(self, freq):
        with pytest.raises(SimulationError):
            Clock(frequency_hz=freq)
