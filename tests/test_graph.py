"""Tests for graph algorithms: references and accelerated drivers."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import (
    bellman_ford_passes,
    bfs_reference,
    pagerank_reference,
    run_bfs,
    run_pagerank,
    run_sssp,
    sssp_reference,
)


def to_nx(adj):
    g = nx.DiGraph()
    g.add_nodes_from(range(adj.shape[0]))
    coo = adj.tocoo()
    for u, v, w in zip(coo.row, coo.col, coo.data):
        g.add_edge(int(u), int(v), weight=float(w))
    return g


class TestReferencesAgainstNetworkx:
    def test_bfs_levels(self, random_digraph):
        unit = (random_digraph != 0).astype(float)
        ours = bfs_reference(unit, 0)
        lengths = nx.single_source_shortest_path_length(
            to_nx(unit), 0)
        for v in range(60):
            if v in lengths:
                assert ours[v] == lengths[v]
            else:
                assert np.isinf(ours[v])

    def test_sssp_distances(self, random_digraph):
        ours = sssp_reference(random_digraph, 0)
        lengths = nx.single_source_dijkstra_path_length(
            to_nx(random_digraph), 0)
        for v in range(60):
            if v in lengths:
                assert ours[v] == pytest.approx(lengths[v])
            else:
                assert np.isinf(ours[v])

    def test_pagerank_close_to_networkx(self, random_digraph):
        unit = (random_digraph != 0).astype(float)
        ours = pagerank_reference(unit, damping=0.85, tol=1e-12)
        theirs = nx.pagerank(to_nx(unit), alpha=0.85, tol=1e-12)
        for v in range(60):
            assert ours[v] == pytest.approx(theirs[v], abs=2e-6)

    def test_sssp_rejects_negative_weights(self):
        import scipy.sparse as sp
        adj = sp.coo_matrix(([-1.0], ([0], [1])), shape=(2, 2)).tocsr()
        with pytest.raises(DatasetError):
            sssp_reference(adj, 0)

    def test_bellman_ford_matches_dijkstra(self, random_digraph):
        dist_bf, passes = bellman_ford_passes(random_digraph, 0)
        dist_dj = sssp_reference(random_digraph, 0)
        np.testing.assert_allclose(
            np.nan_to_num(dist_bf, posinf=-1.0),
            np.nan_to_num(dist_dj, posinf=-1.0),
        )
        assert passes >= 1


class TestAcceleratedDrivers:
    def test_bfs_matches_reference(self, random_digraph):
        unit = (random_digraph != 0).astype(float)
        result = run_bfs(random_digraph, 0)
        expected = bfs_reference(unit, 0)
        np.testing.assert_allclose(
            np.nan_to_num(result.values, posinf=-1.0),
            np.nan_to_num(expected, posinf=-1.0),
        )
        assert result.converged

    def test_sssp_matches_reference(self, random_digraph):
        result = run_sssp(random_digraph, 0)
        expected = sssp_reference(random_digraph, 0)
        np.testing.assert_allclose(
            np.nan_to_num(result.values, posinf=-1.0),
            np.nan_to_num(expected, posinf=-1.0),
            atol=1e-10,
        )

    def test_sssp_known_graph(self, small_digraph):
        result = run_sssp(small_digraph, 0)
        assert result.values[3] == pytest.approx(4.0)   # 0-1-2-3
        assert result.values[11] == pytest.approx(13.0)  # 0-8-9-10-11

    def test_pagerank_matches_reference(self, random_digraph):
        result = run_pagerank(random_digraph, tol=1e-11)
        expected = pagerank_reference(random_digraph, tol=1e-11)
        np.testing.assert_allclose(result.values, expected, atol=1e-9)

    def test_pagerank_sums_to_one(self, random_digraph):
        result = run_pagerank(random_digraph, tol=1e-10)
        assert result.values.sum() == pytest.approx(1.0)
        assert (result.values > 0).all()

    def test_reports_combined_over_passes(self, random_digraph):
        result = run_bfs(random_digraph, 0)
        assert result.report.cycles > 0
        assert result.report.kernel == "bfs"
        assert result.iterations >= 2

    def test_source_validation(self, random_digraph):
        with pytest.raises(DatasetError):
            run_bfs(random_digraph, 600)
        with pytest.raises(DatasetError):
            run_sssp(random_digraph, -1)

    def test_damping_validation(self, random_digraph):
        with pytest.raises(DatasetError):
            run_pagerank(random_digraph, damping=1.5)

    def test_max_passes_caps_iterations(self, random_digraph):
        result = run_bfs(random_digraph, 0, max_passes=1)
        assert result.iterations == 1
        assert not result.converged

    def test_unreachable_vertices_stay_inf(self, small_digraph):
        result = run_bfs(small_digraph, 5)
        # Vertex 0 has no in-path from 5.
        assert np.isinf(result.values[0])
