"""Event heap: total ordering, counters, lazy-deletion bookkeeping."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Event, EventKind, EventQueue


class TestTotalOrder:
    def test_cycle_is_the_primary_key(self):
        q = EventQueue()
        q.push(20.0, EventKind.ARRIVAL, 1)
        q.push(10.0, EventKind.DEADLINE_EXPIRY, 2)
        q.push(15.0, EventKind.DISPATCH_COMPLETE, 0)
        assert [e.cycle for e in (q.pop(), q.pop(), q.pop())] \
            == [10.0, 15.0, 20.0]

    def test_kind_breaks_cycle_ties_in_declared_order(self):
        # Coincident events process as: arrival, dispatch-complete,
        # retry-ready, breaker-reopen, deadline-expiry.
        q = EventQueue()
        kinds = [EventKind.DEADLINE_EXPIRY, EventKind.ARRIVAL,
                 EventKind.BREAKER_REOPEN, EventKind.RETRY_READY,
                 EventKind.DISPATCH_COMPLETE]
        for k in kinds:
            q.push(5.0, k, 0)
        popped = [q.pop().kind for _ in range(len(kinds))]
        assert popped == sorted(int(k) for k in kinds)

    def test_key_breaks_kind_ties(self):
        q = EventQueue()
        for key in (7, 3, 5):
            q.push(5.0, EventKind.RETRY_READY, key)
        assert [q.pop().key for _ in range(3)] == [3, 5, 7]

    def test_seq_makes_exact_duplicates_fifo(self):
        q = EventQueue()
        first = q.push(5.0, EventKind.ARRIVAL, 1)
        second = q.push(5.0, EventKind.ARRIVAL, 1)
        assert first.seq < second.seq
        assert q.pop() is not second
        assert q.pop() is second

    def test_event_tuple_shape(self):
        e = Event(1.0, int(EventKind.ARRIVAL), 3, 0)
        assert (e.cycle, e.kind, e.key, e.seq) == (1.0, 0, 3, 0)


class TestQueueMechanics:
    def test_len_bool_peek(self):
        q = EventQueue()
        assert not q and len(q) == 0
        assert q.peek() is None
        q.push(1.0, EventKind.ARRIVAL, 0)
        assert q and len(q) == 1
        assert q.peek().cycle == 1.0
        assert len(q) == 1  # peek does not consume

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_counters(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, 0)
        q.push(2.0, EventKind.ARRIVAL, 1)
        q.pop()
        q.mark_stale()
        assert (q.pushed, q.popped, q.stale) == (2, 1, 1)

    def test_identical_push_sequence_pops_identically(self):
        # The order is a pure function of the pushed tuples — two
        # queues fed the same sequence drain in the same order, which
        # is what makes a heap-cored run replayable.
        seq = [(3.0, EventKind.DEADLINE_EXPIRY, 2),
               (1.0, EventKind.ARRIVAL, 9),
               (3.0, EventKind.ARRIVAL, 4),
               (2.0, EventKind.BREAKER_REOPEN, 0),
               (3.0, EventKind.ARRIVAL, 1)]
        a, b = EventQueue(), EventQueue()
        for item in seq:
            a.push(*item)
            b.push(*item)
        drained_a = [a.pop() for _ in range(len(seq))]
        drained_b = [b.pop() for _ in range(len(seq))]
        assert drained_a == drained_b
        assert [(e.cycle, e.kind, e.key) for e in drained_a] == [
            (1.0, 0, 9), (2.0, 3, 0), (3.0, 0, 1), (3.0, 0, 4),
            (3.0, 4, 2)]


class TestLifecycleKinds:
    def test_new_kinds_sort_after_the_original_five(self):
        # DEVICE_*/HEDGE_TIMER were appended to the enum, so at a
        # coincident cycle every pre-chaos kind still drains in its
        # historical position — the ordering half of the "chaos off is
        # inert" guarantee.
        originals = [EventKind.ARRIVAL, EventKind.DISPATCH_COMPLETE,
                     EventKind.RETRY_READY, EventKind.BREAKER_REOPEN,
                     EventKind.DEADLINE_EXPIRY]
        newcomers = [EventKind.DEVICE_CRASH, EventKind.DEVICE_HANG,
                     EventKind.DEVICE_RECOVER, EventKind.HEDGE_TIMER]
        assert max(int(k) for k in originals) \
            < min(int(k) for k in newcomers)
        q = EventQueue()
        for k in newcomers + originals:
            q.push(5.0, k, 0)
        drained = []
        while q:
            drained.append(q.pop().kind)
        assert drained[:len(originals)] == sorted(
            int(k) for k in originals)

    def test_push_returns_the_live_event_object(self):
        q = EventQueue()
        first = q.push(1.0, EventKind.HEDGE_TIMER, 9)
        second = q.push(1.0, EventKind.HEDGE_TIMER, 9)
        # Identity, not equality, is how the scheduler supersedes a
        # timer: the stored reference pins exactly one pushed event.
        assert first is not second
        assert q.pop() is first
        assert q.pop() is second


class TestLazyDeletionProperty:
    """Satellite of the chaos PR: the scheduler cancels in-flight work
    (hedge losers, crash-voided completions) by *superseding* the live
    event reference and letting the heap entry die stale.  The
    property: however cancellations interleave with pushes, a stale
    entry is counted in ``stale``, never applied, and the survivors'
    drain order is untouched."""

    @given(
        ops=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False),
                st.integers(min_value=0, max_value=5),   # key (job id)
            ),
            min_size=1, max_size=40,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_cancelled_events_go_stale_not_applied(self, ops):
        q = EventQueue()
        live = {}          # key -> the one event allowed to act
        superseded = 0
        for cycle, key in ops:
            event = q.push(cycle, EventKind.DISPATCH_COMPLETE, key)
            if key in live:
                superseded += 1   # old entry still in heap, now dead
            live[key] = event
        state = {}         # key -> cycle the applied event carried
        applied = 0
        while q:
            event = q.pop()
            if live.get(event.key) is event:
                state[event.key] = event.cycle
                applied += 1
            else:
                q.mark_stale()
        # Every push is accounted exactly once: applied or stale.
        assert applied + q.stale == len(ops)
        assert q.stale == superseded
        # Job state was only ever touched by the live survivor.
        assert state == {k: e.cycle for k, e in live.items()}

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_cancel_order_does_not_perturb_survivors(self, seed):
        rng = random.Random(seed)
        pushes = [(rng.uniform(0, 50), rng.randrange(4))
                  for _ in range(20)]
        def drain(cancel_indices):
            q = EventQueue()
            events = [q.push(c, EventKind.HEDGE_TIMER, k)
                      for c, k in pushes]
            dead = {id(events[i]) for i in cancel_indices}
            out = []
            while q:
                e = q.pop()
                if id(e) in dead:
                    q.mark_stale()
                else:
                    out.append((e.cycle, e.kind, e.key, e.seq))
            return out
        cancels = rng.sample(range(20), 8)
        # Survivor order is independent of *when* the cancellations
        # were decided — cancelling is pure metadata, the heap order
        # is fixed at push time.
        assert drain(cancels) == drain(list(reversed(cancels)))
        full = drain([])
        survivors = drain(cancels)
        assert [x for x in full if x in survivors] == survivors
