"""Event heap: total ordering, counters, lazy-deletion bookkeeping."""

import pytest

from repro.runtime import Event, EventKind, EventQueue


class TestTotalOrder:
    def test_cycle_is_the_primary_key(self):
        q = EventQueue()
        q.push(20.0, EventKind.ARRIVAL, 1)
        q.push(10.0, EventKind.DEADLINE_EXPIRY, 2)
        q.push(15.0, EventKind.DISPATCH_COMPLETE, 0)
        assert [e.cycle for e in (q.pop(), q.pop(), q.pop())] \
            == [10.0, 15.0, 20.0]

    def test_kind_breaks_cycle_ties_in_declared_order(self):
        # Coincident events process as: arrival, dispatch-complete,
        # retry-ready, breaker-reopen, deadline-expiry.
        q = EventQueue()
        kinds = [EventKind.DEADLINE_EXPIRY, EventKind.ARRIVAL,
                 EventKind.BREAKER_REOPEN, EventKind.RETRY_READY,
                 EventKind.DISPATCH_COMPLETE]
        for k in kinds:
            q.push(5.0, k, 0)
        popped = [q.pop().kind for _ in range(len(kinds))]
        assert popped == sorted(int(k) for k in kinds)

    def test_key_breaks_kind_ties(self):
        q = EventQueue()
        for key in (7, 3, 5):
            q.push(5.0, EventKind.RETRY_READY, key)
        assert [q.pop().key for _ in range(3)] == [3, 5, 7]

    def test_seq_makes_exact_duplicates_fifo(self):
        q = EventQueue()
        first = q.push(5.0, EventKind.ARRIVAL, 1)
        second = q.push(5.0, EventKind.ARRIVAL, 1)
        assert first.seq < second.seq
        assert q.pop() is not second
        assert q.pop() is second

    def test_event_tuple_shape(self):
        e = Event(1.0, int(EventKind.ARRIVAL), 3, 0)
        assert (e.cycle, e.kind, e.key, e.seq) == (1.0, 0, 3, 0)


class TestQueueMechanics:
    def test_len_bool_peek(self):
        q = EventQueue()
        assert not q and len(q) == 0
        assert q.peek() is None
        q.push(1.0, EventKind.ARRIVAL, 0)
        assert q and len(q) == 1
        assert q.peek().cycle == 1.0
        assert len(q) == 1  # peek does not consume

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_counters(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, 0)
        q.push(2.0, EventKind.ARRIVAL, 1)
        q.pop()
        q.mark_stale()
        assert (q.pushed, q.popped, q.stale) == (2, 1, 1)

    def test_identical_push_sequence_pops_identically(self):
        # The order is a pure function of the pushed tuples — two
        # queues fed the same sequence drain in the same order, which
        # is what makes a heap-cored run replayable.
        seq = [(3.0, EventKind.DEADLINE_EXPIRY, 2),
               (1.0, EventKind.ARRIVAL, 9),
               (3.0, EventKind.ARRIVAL, 4),
               (2.0, EventKind.BREAKER_REOPEN, 0),
               (3.0, EventKind.ARRIVAL, 1)]
        a, b = EventQueue(), EventQueue()
        for item in seq:
            a.push(*item)
            b.push(*item)
        drained_a = [a.pop() for _ in range(len(seq))]
        drained_b = [b.pop() for _ in range(len(seq))]
        assert drained_a == drained_b
        assert [(e.cycle, e.kind, e.key) for e in drained_a] == [
            (1.0, 0, 9), (2.0, 3, 0), (3.0, 0, 1), (3.0, 0, 4),
            (3.0, 4, 2)]
