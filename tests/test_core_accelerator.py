"""Integration-level tests for the Alrescha accelerator model."""

import numpy as np
import pytest

from repro.core import Alrescha, AlreschaConfig, KernelType, convert
from repro.errors import ConfigError, SimulationError
from repro.kernels import forward_sweep


class TestProgramming:
    def test_from_matrix_round_trip(self, spd_small):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        assert acc.n == 17
        assert len(acc.table) > 0

    def test_omega_mismatch_rejected(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=4)
        acc = Alrescha(AlreschaConfig(omega=8))
        with pytest.raises(ConfigError):
            acc.program(conv)

    def test_unprogrammed_access_rejected(self):
        with pytest.raises(SimulationError):
            Alrescha().run_spmv(np.zeros(4))

    def test_wrong_kernel_rejected(self, spd_small):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        with pytest.raises(SimulationError):
            acc.run_symgs_sweep(np.zeros(17), np.zeros(17))

    def test_wrong_operand_shape_rejected(self, spd_small):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        with pytest.raises(SimulationError):
            acc.run_spmv(np.zeros(5))


class TestSpMVExecution:
    def test_matches_reference(self, spd_medium, rng):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_medium)
        x = rng.normal(size=70)
        y, _report = acc.run_spmv(x)
        np.testing.assert_allclose(y, spd_medium @ x)

    def test_repeatable(self, spd_small, rng):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        x = rng.normal(size=17)
        y1, r1 = acc.run_spmv(x)
        y2, r2 = acc.run_spmv(x)
        np.testing.assert_allclose(y1, y2)
        assert r1.cycles == pytest.approx(r2.cycles)

    def test_report_sane(self, spd_medium, rng):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_medium)
        _y, report = acc.run_spmv(rng.normal(size=70))
        assert report.cycles > 0
        assert report.useful_bytes == acc.conversion.bcsr.nnz * 8
        assert report.streamed_bytes >= report.useful_bytes
        assert 0.0 < report.bandwidth_utilization <= 1.0
        assert report.sequential_cycles == 0.0
        assert report.energy_j > 0.0

    def test_spmv_is_memory_bound(self, spd_medium, rng):
        """With no dependent data paths, execution tracks the stream."""
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_medium)
        _y, report = acc.run_spmv(rng.normal(size=70))
        stream_cycles = report.streamed_bytes / report.bytes_per_cycle
        assert report.cycles == pytest.approx(stream_cycles, rel=0.35)


class TestSymGSExecution:
    def test_matches_reference_sweep(self, spd_medium, rng):
        acc = Alrescha.from_matrix(KernelType.SYMGS, spd_medium)
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        x1, _ = acc.run_symgs_sweep(b, x0)
        np.testing.assert_allclose(x1, forward_sweep(spd_medium, b, x0),
                                   atol=1e-10)

    def test_matches_reference_banded(self, banded_spd, rng):
        acc = Alrescha.from_matrix(KernelType.SYMGS, banded_spd)
        b = rng.normal(size=40)
        x0 = np.zeros(40)
        x1, _ = acc.run_symgs_sweep(b, x0)
        np.testing.assert_allclose(x1, forward_sweep(banded_spd, b, x0),
                                   atol=1e-10)

    def test_iterated_sweeps_converge(self, banded_spd, rng):
        """Gauss-Seidel on a diagonally dominant system converges."""
        acc = Alrescha.from_matrix(KernelType.SYMGS, banded_spd)
        x_true = rng.normal(size=40)
        b = banded_spd @ x_true
        x = np.zeros(40)
        for _ in range(60):
            x, _ = acc.run_symgs_sweep(b, x)
        np.testing.assert_allclose(x, x_true, atol=1e-6)

    def test_sequential_cycles_reported(self, spd_medium, rng):
        acc = Alrescha.from_matrix(KernelType.SYMGS, spd_medium)
        _x, report = acc.run_symgs_sweep(rng.normal(size=70),
                                         np.zeros(70))
        assert report.sequential_cycles > 0
        assert 0.0 < report.sequential_fraction < 1.0
        assert "d-symgs" in report.datapath_cycles
        assert "gemv" in report.datapath_cycles

    def test_non_reordered_table_same_result(self, spd_medium, rng):
        """The reordering ablation changes timing, not values."""
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        acc_r = Alrescha.from_matrix(KernelType.SYMGS, spd_medium,
                                     reorder=True)
        acc_n = Alrescha.from_matrix(KernelType.SYMGS, spd_medium,
                                     reorder=False)
        x_r, rep_r = acc_r.run_symgs_sweep(b, x0)
        x_n, rep_n = acc_n.run_symgs_sweep(b, x0)
        np.testing.assert_allclose(x_r, x_n)
        # Without reordering the diagonal blocks must be re-fetched, so
        # the natural order streams strictly more and runs longer.
        assert rep_n.streamed_bytes > rep_r.streamed_bytes
        assert rep_n.cycles >= rep_r.cycles

    def test_reconfig_hidden_by_default(self, spd_medium, rng):
        acc = Alrescha.from_matrix(KernelType.SYMGS, spd_medium)
        _x, report = acc.run_symgs_sweep(rng.normal(size=70), np.zeros(70))
        assert report.exposed_reconfig_cycles == 0.0

    def test_reconfig_exposed_when_ablated(self, spd_medium, rng):
        cfg = AlreschaConfig(hide_reconfig_under_drain=False)
        acc = Alrescha.from_matrix(KernelType.SYMGS, spd_medium, config=cfg)
        _x, report = acc.run_symgs_sweep(rng.normal(size=70), np.zeros(70))
        assert report.exposed_reconfig_cycles > 0.0


class TestConfigurationVariants:
    @pytest.mark.parametrize("omega", [4, 8, 16])
    def test_omega_sweep_functionally_identical(self, spd_medium, rng,
                                                omega):
        cfg = AlreschaConfig(omega=omega, n_alus=max(16, omega))
        acc = Alrescha.from_matrix(KernelType.SYMGS, spd_medium, config=cfg)
        b = rng.normal(size=70)
        x1, _ = acc.run_symgs_sweep(b, np.zeros(70))
        np.testing.assert_allclose(
            x1, forward_sweep(spd_medium, b, np.zeros(70)), atol=1e-10
        )

    def test_larger_omega_streams_more_padding(self, spd_medium):
        conv8 = convert(KernelType.SPMV, spd_medium, omega=8)
        conv16 = convert(KernelType.SPMV, spd_medium, omega=16)
        assert conv16.matrix.stored_values >= conv8.matrix.stored_values

    def test_energy_scales_with_work(self, spd_small, spd_medium, rng):
        small = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        large = Alrescha.from_matrix(KernelType.SPMV, spd_medium)
        _y1, r1 = small.run_spmv(rng.normal(size=17))
        _y2, r2 = large.run_spmv(rng.normal(size=70))
        assert r2.energy_j > r1.energy_j
