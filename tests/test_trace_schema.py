"""Trace-file schema versioning and load-time validation.

``dump_trace`` writes a versioned ``{"version": N, "jobs": [...]}``
envelope in canonical JSON; ``load_trace`` accepts that envelope plus
the pre-envelope bare-list form (implicit version 1), and rejects
everything else with a :class:`~repro.errors.ConfigError` that names
the file and the offending key — a trace fixture that half-parses is
worse than one that refuses loudly.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.runtime import TRACE_SCHEMA_VERSION, dump_trace, load_trace
from repro.runtime.jobs import TraceSpec, make_trace


@pytest.fixture
def trace():
    return make_trace(TraceSpec(n_requests=6, seed=3))


def _write(tmp_path, payload):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestRoundTrip:
    def test_dump_writes_versioned_envelope(self, trace, tmp_path):
        path = str(tmp_path / "t.json")
        n = dump_trace(trace, path)
        raw = open(path).read()
        assert len(raw) == n
        payload = json.loads(raw)
        assert payload["version"] == TRACE_SCHEMA_VERSION
        assert len(payload["jobs"]) == len(trace)
        # Canonical: re-encoding with the same conventions is a no-op.
        assert raw == json.dumps(payload, sort_keys=True,
                                 separators=(",", ":")) + "\n"

    def test_round_trip_is_identity(self, trace, tmp_path):
        path = str(tmp_path / "t.json")
        dump_trace(trace, path)
        assert load_trace(path) == trace

    def test_legacy_bare_list_still_loads(self, trace, tmp_path):
        from dataclasses import asdict
        path = _write(tmp_path, [asdict(j) for j in trace])
        assert load_trace(path) == trace


class TestLoadValidation:
    def test_future_version_refused(self, trace, tmp_path):
        path = _write(tmp_path, {
            "version": TRACE_SCHEMA_VERSION + 1, "jobs": []})
        with pytest.raises(ConfigError) as exc:
            load_trace(path)
        assert path in str(exc.value)
        assert str(TRACE_SCHEMA_VERSION + 1) in str(exc.value)

    @pytest.mark.parametrize("version", [0, -1, "1", 1.0, True])
    def test_non_positive_or_non_int_version(self, version, tmp_path):
        path = _write(tmp_path, {"version": version, "jobs": []})
        with pytest.raises(ConfigError, match="version"):
            load_trace(path)

    def test_unknown_top_level_key_named(self, tmp_path):
        path = _write(tmp_path, {"version": 1, "jobs": [],
                                 "extra": 1})
        with pytest.raises(ConfigError, match="'extra'"):
            load_trace(path)

    @pytest.mark.parametrize("payload,needle", [
        ({"jobs": []}, "'version'"),
        ({"version": 1}, "'jobs'"),
        ({"version": 1, "jobs": {}}, "list"),
        ("a string", "got str"),
    ])
    def test_bad_envelope_shapes(self, payload, needle, tmp_path):
        path = _write(tmp_path, payload)
        with pytest.raises(ConfigError) as exc:
            load_trace(path)
        assert needle in str(exc.value)
        assert path in str(exc.value)

    def test_entry_with_unknown_key_named(self, trace, tmp_path):
        from dataclasses import asdict
        entry = asdict(trace[0])
        entry["bogus_field"] = 1
        path = _write(tmp_path, {"version": 1, "jobs": [entry]})
        with pytest.raises(ConfigError) as exc:
            load_trace(path)
        assert "'bogus_field'" in str(exc.value)
        assert "entry 0" in str(exc.value)

    def test_entry_missing_required_key_named(self, trace, tmp_path):
        from dataclasses import asdict
        entry = asdict(trace[2])
        del entry["deadline_cycles"]
        path = _write(tmp_path, {"version": 1, "jobs": [entry]})
        with pytest.raises(ConfigError) as exc:
            load_trace(path)
        assert "'deadline_cycles'" in str(exc.value)
        assert "entry 0" in str(exc.value)

    def test_entry_missing_optional_key_defaults(self, trace,
                                                 tmp_path):
        from dataclasses import asdict
        entry = asdict(trace[0])
        del entry["priority"]  # has a dataclass default
        path = _write(tmp_path, {"version": 1, "jobs": [entry]})
        assert load_trace(path)[0].priority == 0

    def test_non_object_entry_rejected(self, tmp_path):
        path = _write(tmp_path, {"version": 1, "jobs": [[1, 2]]})
        with pytest.raises(ConfigError, match="entry 0"):
            load_trace(path)
