"""Tests for the detailed (bounded-buffer) timing simulation."""

import numpy as np
import pytest

from repro.core import (
    Alrescha,
    DEFAULT_FIFO_DEPTH,
    KernelType,
    crosscheck_with_analytic,
    fifo_depth_sweep,
    simulate_pass,
)
from repro.datasets import load_dataset, stencil27
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def symgs_acc():
    return Alrescha.from_matrix(KernelType.SYMGS, stencil27(6, 6, 6))


@pytest.fixture(scope="module")
def spmv_acc():
    return Alrescha.from_matrix(KernelType.SPMV, stencil27(6, 6, 6))


class TestDetailedSimulation:
    def test_report_structure(self, symgs_acc):
        report = simulate_pass(symgs_acc)
        assert report.cycles > 0
        assert report.n_jobs == len(symgs_acc.table)
        assert 0.0 < report.memory_utilization <= 1.0
        assert 0.0 < report.engine_utilization <= 1.0
        assert report.mem_busy_cycles + report.mem_stall_cycles \
            == pytest.approx(report.cycles)

    def test_invalid_depth(self, symgs_acc):
        with pytest.raises(SimulationError):
            simulate_pass(symgs_acc, fifo_depth=0)

    def test_deterministic(self, symgs_acc):
        a = simulate_pass(symgs_acc)
        b = simulate_pass(symgs_acc)
        assert a.cycles == b.cycles


class TestCrossValidation:
    def test_symgs_agrees_with_analytic(self, symgs_acc):
        n = symgs_acc.n
        b = np.random.default_rng(0).normal(size=n)
        _x, rep = symgs_acc.run_symgs_sweep(b, np.zeros(n))
        check = crosscheck_with_analytic(symgs_acc, rep.cycles)
        assert 0.7 < check["ratio"] < 1.3

    def test_spmv_agrees_with_analytic(self, spmv_acc):
        n = spmv_acc.n
        _y, rep = spmv_acc.run_spmv(np.ones(n))
        check = crosscheck_with_analytic(spmv_acc, rep.cycles)
        assert 0.7 < check["ratio"] < 1.3

    @pytest.mark.parametrize("name", ["af_shell", "scircuit", "Youtube"])
    def test_agreement_across_datasets(self, name):
        ds = load_dataset(name, scale=0.05)
        matrix = ds.matrix if ds.kind == "scientific" \
            else ds.matrix.T.tocsr()
        acc = Alrescha.from_matrix(KernelType.SPMV, matrix)
        _y, rep = acc.run_spmv(np.ones(acc.n))
        check = crosscheck_with_analytic(acc, rep.cycles)
        assert 0.6 < check["ratio"] < 1.4, name


class TestFifoDepth:
    def test_deeper_fifo_never_slower(self, symgs_acc):
        sweep = fifo_depth_sweep(symgs_acc, [1, 2, 4, 8, 16])
        cycles = [sweep[d]["cycles"] for d in (1, 2, 4, 8, 16)]
        for shallow, deep in zip(cycles, cycles[1:]):
            assert deep <= shallow + 1e-9

    def test_depth_one_serialises(self, symgs_acc):
        """With no run-ahead window, stream and compute interlock and
        the pass takes measurably longer — the reason §4.3's FIFOs
        exist."""
        sweep = fifo_depth_sweep(symgs_acc, [1, DEFAULT_FIFO_DEPTH])
        assert sweep[1]["cycles"] > sweep[DEFAULT_FIFO_DEPTH]["cycles"]

    def test_saturation(self, symgs_acc):
        """Beyond a modest depth, extra buffering buys nothing."""
        sweep = fifo_depth_sweep(symgs_acc, [8, 64])
        assert sweep[64]["cycles"] == pytest.approx(sweep[8]["cycles"])

    def test_stalls_shrink_with_depth(self, symgs_acc):
        sweep = fifo_depth_sweep(symgs_acc, [1, 8])
        assert sweep[8]["mem_stall_cycles"] <= sweep[1]["mem_stall_cycles"]
