"""Content-addressed artifact store: round-trip fidelity.

The store's contract is byte-exactness: an artifact loaded from disk
must reproduce the compile path bit for bit — same program bytes, same
device image, same BCSR arrays — and an accelerator programmed from a
loaded artifact must produce field-identical :class:`SimReport`\\ s and
byte-identical trace exports.  The hypothesis property sweeps matrix
shapes and kernels; the serving tests pin the headline guarantee that
a warm-started serve run performs *zero* compilations while its report
stays byte-identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType
from repro.core.convert import convert
from repro.core.device_image import encode_image
from repro.host.compile import encode_program
from repro.observe import Tracer, dumps_chrome_trace
from repro.runtime import serve
from repro.runtime.metrics import report_json
from repro.store import (
    ArtifactStore,
    config_fingerprint,
    content_key,
    matrix_crc,
    store_report_json,
)

from .conftest import make_spd_dense


def _prime(store, matrix, kernel=KernelType.SPMV,
           config=None):
    """Compile-and-store one artifact, returning (conv, key)."""
    return store.conversion(kernel, matrix, config or AlreschaConfig())


class TestContentKey:
    def test_key_is_deterministic(self, spd_small):
        cfg = AlreschaConfig()
        k1 = content_key(KernelType.SPMV, spd_small, cfg)
        k2 = content_key(KernelType.SPMV, spd_small, cfg)
        assert k1 == k2

    def test_key_varies_with_kernel_matrix_config(self, spd_small,
                                                  spd_medium):
        cfg = AlreschaConfig()
        base = content_key(KernelType.SPMV, spd_small, cfg)
        assert content_key(KernelType.SYMGS, spd_small, cfg) != base
        assert content_key(KernelType.SPMV, spd_medium, cfg) != base
        other = AlreschaConfig(omega=4)
        assert content_key(KernelType.SPMV, spd_small, other) != base
        assert content_key(KernelType.SPMV, spd_small, cfg,
                           reorder=False) != base

    def test_fingerprint_ignores_runtime_only_knobs(self):
        """Fault model, tracer and store attachment must not change the
        content key — all pool devices (and the fault-free golden
        device) share one artifact."""
        from repro.sim.faults import FaultModel
        base = config_fingerprint(AlreschaConfig())
        assert config_fingerprint(AlreschaConfig(
            fault_model=FaultModel(rate=0.5, seed=1))) == base
        assert config_fingerprint(AlreschaConfig(
            tracer=Tracer())) == base
        assert config_fingerprint(AlreschaConfig(
            artifact_store=object())) == base
        assert config_fingerprint(AlreschaConfig(omega=4)) != base

    def test_matrix_crc_sees_values_not_just_pattern(self, spd_small):
        other = spd_small.copy()
        other[0, 0] += 1.0
        assert matrix_crc(spd_small) != matrix_crc(other)


class TestRoundTripProperty:
    @settings(max_examples=12, deadline=None)
    @given(n=st.integers(min_value=9, max_value=48),
           seed=st.integers(min_value=0, max_value=6),
           kernel=st.sampled_from([KernelType.SPMV, KernelType.SYMGS]))
    def test_store_load_execute_identical(self, tmp_path_factory, n,
                                          seed, kernel):
        """store -> load -> execute reproduces the compile path exactly:
        byte-identical artifacts, field-identical reports, byte-identical
        trace exports."""
        matrix = make_spd_dense(n, density=0.2, seed=seed)
        root = tmp_path_factory.mktemp("store")

        cold = ArtifactStore(root)
        conv_cold, key = _prime(cold, matrix, kernel)
        assert cold.report().conversions_compiled == 1

        # A fresh store instance on the same directory must load, not
        # compile.
        warm = ArtifactStore(root)
        conv_warm, key2 = _prime(warm, matrix, kernel)
        rep = warm.report()
        assert key2 == key
        assert (rep.conversions_compiled, rep.conversions_loaded) == (0, 1)

        # Byte-identical artifacts.
        assert (encode_program(conv_warm.kernel, conv_warm.table)
                == encode_program(conv_cold.kernel, conv_cold.table))
        assert (encode_image(conv_warm.matrix)
                == encode_image(conv_cold.matrix))
        for attr in ("block_indptr", "block_cols", "blocks"):
            np.testing.assert_array_equal(
                getattr(conv_warm.bcsr, attr),
                getattr(conv_cold.bcsr, attr))
        assert conv_warm.reordered == conv_cold.reordered

        # Field-identical execution.
        x = np.random.default_rng(seed).normal(size=n)
        acc_cold, acc_warm = Alrescha(), Alrescha()
        acc_cold.program(conv_cold)
        acc_warm.program(conv_warm)
        if kernel is KernelType.SPMV:
            y_cold, rep_cold = acc_cold.run_spmv(x)
            y_warm, rep_warm = acc_warm.run_spmv(x)
        else:
            y_cold, rep_cold = acc_cold.run_symgs_sweep(
                x, np.zeros(n))
            y_warm, rep_warm = acc_warm.run_symgs_sweep(
                x, np.zeros(n))
        np.testing.assert_array_equal(y_cold, y_warm)
        assert rep_cold == rep_warm

        # Byte-identical trace exports.
        traces = []
        for conv in (conv_cold, conv_warm):
            tracer = Tracer()
            acc = Alrescha(AlreschaConfig(tracer=tracer))
            acc.program(conv)
            if kernel is KernelType.SPMV:
                acc.run_spmv(x)
            else:
                acc.run_symgs_sweep(x, np.zeros(n))
            traces.append(dumps_chrome_trace(tracer))
        assert traces[0] == traces[1]

    def test_loaded_artifact_round_trips_through_from_matrix(
            self, spd_small, tmp_path):
        """The high-level entry point (from_matrix with an attached
        store) produces the same answers as the storeless path."""
        x = np.random.default_rng(0).normal(size=spd_small.shape[0])
        plain = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        y_plain, rep_plain = plain.run_spmv(x)

        store = ArtifactStore(tmp_path)
        cfg = AlreschaConfig(artifact_store=store)
        cold = Alrescha.from_matrix(KernelType.SPMV, spd_small,
                                    config=cfg)
        y_cold, rep_cold = cold.run_spmv(x)

        warm_store = ArtifactStore(tmp_path)
        cfg2 = AlreschaConfig(artifact_store=warm_store)
        warm = Alrescha.from_matrix(KernelType.SPMV, spd_small,
                                    config=cfg2)
        y_warm, rep_warm = warm.run_spmv(x)

        assert warm_store.report().conversions_compiled == 0
        np.testing.assert_array_equal(y_plain, y_cold)
        np.testing.assert_array_equal(y_plain, y_warm)
        assert rep_plain == rep_cold == rep_warm


class TestWarmStartServing:
    def _serve(self, store):
        return serve(n_requests=8, n_devices=2, seed=3, scale=0.02,
                     artifact_store=store)

    def test_warm_start_serves_with_zero_compilations(self, tmp_path):
        cold = ArtifactStore(tmp_path)
        _, rep_cold = self._serve(cold)
        assert cold.report().conversions_compiled > 0

        warm = ArtifactStore(tmp_path)
        _, rep_warm = self._serve(warm)
        wrep = warm.report()
        # The headline guarantee: the programming phase is gone.
        assert wrep.conversions_compiled == 0
        assert wrep.templates_captured == 0
        assert wrep.conversions_loaded > 0
        # ... and nothing about the answers changed.
        assert report_json(rep_cold) == report_json(rep_warm)

    def test_storeless_default_is_unperturbed(self, tmp_path):
        """artifact_store=None (the default) must stay field-identical
        to a stored run — attaching a store changes cost of programming,
        never results."""
        _, rep_plain = serve(n_requests=8, n_devices=2, seed=3,
                             scale=0.02)
        _, rep_stored = self._serve(ArtifactStore(tmp_path))
        assert report_json(rep_plain) == report_json(rep_stored)

    def test_store_report_json_is_canonical(self, tmp_path):
        import json
        store = ArtifactStore(tmp_path)
        self._serve(store)
        payload = store_report_json(store.report())
        assert payload == json.dumps(
            json.loads(payload), sort_keys=True,
            separators=(",", ":")) + "\n"
        assert "conversions_compiled" in payload


class TestLRU:
    def _matrices(self, count):
        return [make_spd_dense(12 + 3 * i, density=0.25, seed=i)
                for i in range(count)]

    def test_capacity_bounds_memory_and_evicts_lru(self, tmp_path):
        store = ArtifactStore(tmp_path, capacity=2)
        keys = [
            _prime(store, m)[1] for m in self._matrices(3)
        ]
        rep = store.report()
        assert rep.entries_in_memory == 2
        assert rep.evictions == 1
        # Deterministic order: the first-inserted (least recently used)
        # entry is the one evicted; the disk copy survives.
        assert sorted(store.keys()) == sorted(keys)

    def test_evicted_entry_reloads_from_disk(self, tmp_path):
        store = ArtifactStore(tmp_path, capacity=2)
        mats = self._matrices(3)
        key0 = _prime(store, mats[0])[1]
        _prime(store, mats[1])
        _prime(store, mats[2])  # evicts key0
        before = store.report()
        assert before.memory_hits == 0
        _, again = _prime(store, mats[0])
        after = store.report()
        assert again == key0
        assert after.conversions_loaded == before.conversions_loaded + 1
        assert after.conversions_compiled == 3

    def test_touch_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path, capacity=2)
        mats = self._matrices(3)
        key0 = _prime(store, mats[0])[1]
        _prime(store, mats[1])
        _prime(store, mats[0])  # memory hit: key0 becomes most recent
        assert store.report().memory_hits == 1
        _prime(store, mats[2])  # must evict mats[1], not key0
        _, hit = _prime(store, mats[0])
        rep = store.report()
        assert hit == key0
        assert rep.memory_hits == 2  # key0 still resident
        assert rep.conversions_loaded == 0

    def test_invalid_capacity_or_policy_rejected(self, tmp_path):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ArtifactStore(tmp_path, capacity=0)
        with pytest.raises(ConfigError):
            ArtifactStore(tmp_path, on_error="shrug")
