"""Unit tests for the Alrescha locally-dense storage format (§4.5)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import AlreschaMatrix, BCSRMatrix


@pytest.fixture
def alr_symgs(spd_small):
    return AlreschaMatrix.from_dense(spd_small, omega=8, symgs_layout=True)


@pytest.fixture
def alr_plain(spd_small):
    return AlreschaMatrix.from_dense(spd_small, omega=8, symgs_layout=False)


class TestRoundTrip:
    def test_plain_layout_round_trip(self, spd_small, alr_plain):
        np.testing.assert_allclose(alr_plain.to_dense(), spd_small)

    def test_symgs_layout_round_trip(self, spd_small, alr_symgs):
        np.testing.assert_allclose(alr_symgs.to_dense(), spd_small)

    @pytest.mark.parametrize("omega", [2, 4, 8, 16])
    def test_round_trip_across_omegas(self, spd_medium, omega):
        alr = AlreschaMatrix.from_dense(spd_medium, omega,
                                        symgs_layout=True)
        np.testing.assert_allclose(alr.to_dense(), spd_medium)


class TestBlockOrder:
    def test_diagonal_block_is_last_in_each_row(self, alr_symgs):
        for row, blocks in alr_symgs.block_rows():
            diag_positions = [k for k, b in enumerate(blocks)
                              if b.is_diagonal]
            assert len(diag_positions) <= 1
            if diag_positions:
                assert diag_positions[0] == len(blocks) - 1

    def test_plain_layout_has_no_diagonal_marking(self, alr_plain):
        assert alr_plain.n_diagonal_blocks == 0

    def test_stream_covers_all_blocks(self, spd_small, alr_symgs):
        bcsr = BCSRMatrix.from_dense(spd_small, 8)
        assert alr_symgs.n_blocks >= bcsr.n_blocks


class TestValueOrder:
    def test_upper_blocks_reversed(self, alr_symgs):
        uppers = [b for b in alr_symgs.stream()
                  if not b.is_diagonal and b.block_col > b.block_row]
        assert uppers, "fixture must produce upper-triangle blocks"
        for b in uppers:
            assert b.reversed_cols
            np.testing.assert_allclose(b.original_values, b.values[:, ::-1])

    def test_lower_blocks_keep_order(self, alr_symgs):
        lowers = [b for b in alr_symgs.stream()
                  if not b.is_diagonal and b.block_col < b.block_row]
        assert lowers
        for b in lowers:
            assert not b.reversed_cols

    def test_reversal_preserves_product(self, alr_symgs, rng):
        """Reading the operand right-to-left restores the original GEMV."""
        for b in alr_symgs.stream():
            if not b.reversed_cols:
                continue
            chunk = rng.normal(size=b.values.shape[1])
            np.testing.assert_allclose(b.values @ chunk[::-1],
                                       b.original_values @ chunk)


class TestDiagonalExtraction:
    def test_diagonal_extracted(self, spd_small, alr_symgs):
        np.testing.assert_allclose(alr_symgs.diagonal, np.diag(spd_small))

    def test_diagonal_blocks_have_zero_diag(self, alr_symgs):
        for b in alr_symgs.stream():
            if b.is_diagonal:
                np.testing.assert_allclose(np.diag(b.values), 0.0)

    def test_plain_layout_keeps_diagonal_inline(self, alr_plain):
        assert alr_plain.diagonal is None

    def test_symgs_layout_requires_square(self):
        with pytest.raises(FormatError):
            AlreschaMatrix.from_dense(np.ones((4, 8)), 4, symgs_layout=True)


class TestMetadata:
    def test_runtime_metadata_is_zero(self, alr_symgs, alr_plain):
        assert alr_symgs.runtime_metadata_bits() == 0
        assert alr_plain.runtime_metadata_bits() == 0

    def test_table_metadata_matches_bcsr_budget(self, spd_small, alr_plain):
        bcsr = BCSRMatrix.from_dense(spd_small, 8)
        assert alr_plain.metadata_bits() == bcsr.metadata_bits()

    def test_payload_length(self, alr_plain):
        payload = alr_plain.payload()
        assert payload.size == alr_plain.n_blocks * 64
        assert alr_plain.payload_bytes == payload.size * 8

    def test_payload_streams_in_block_order(self, alr_symgs):
        payload = alr_symgs.payload()
        offset = 0
        for b in alr_symgs.stream():
            np.testing.assert_allclose(
                payload[offset:offset + 64], b.values.ravel()
            )
            offset += 64
