"""Unit tests for the reconfigurable compute unit (§4.3/§4.4)."""

import numpy as np
import pytest

from repro.core import DataPathType, RCUConfig, ReconfigurableComputeUnit
from repro.errors import ReconfigurationError, SimulationError


@pytest.fixture
def rcu():
    return ReconfigurableComputeUnit()


class TestOperands:
    def test_load_and_read_chunk(self, rcu):
        rcu.load_operand("x", np.arange(20.0))
        chunk = rcu.read_chunk("x", 8, 8)
        np.testing.assert_allclose(chunk, np.arange(8.0, 16.0))

    def test_read_past_end_zero_padded(self, rcu):
        rcu.load_operand("x", np.arange(10.0))
        chunk = rcu.read_chunk("x", 8, 8)
        np.testing.assert_allclose(chunk, [8, 9, 0, 0, 0, 0, 0, 0])

    def test_write_chunk(self, rcu):
        rcu.load_operand("x", np.zeros(16))
        rcu.write_chunk("x", 8, np.full(8, 2.0))
        np.testing.assert_allclose(rcu.operand("x")[8:], 2.0)

    def test_write_past_end_truncated(self, rcu):
        rcu.load_operand("x", np.zeros(10))
        rcu.write_chunk("x", 8, np.full(8, 1.0))
        assert rcu.operand("x").size == 10

    def test_operand_is_copied(self, rcu):
        source = np.zeros(4)
        rcu.load_operand("x", source)
        source[0] = 99.0
        assert rcu.operand("x")[0] == 0.0

    def test_missing_operand(self, rcu):
        with pytest.raises(SimulationError):
            rcu.operand("ghost")

    def test_cache_busy_accumulates(self, rcu):
        rcu.load_operand("x", np.arange(64.0))
        rcu.read_chunk("x", 0, 8)
        rcu.read_chunk("x", 8, 8)
        assert rcu.cache_busy_cycles == pytest.approx(2.0)


class TestPEs:
    def test_arithmetic(self, rcu):
        assert rcu.pe("add", 2.0, 3.0) == 5.0
        assert rcu.pe("sub", 2.0, 3.0) == -1.0
        assert rcu.pe("mul", 2.0, 3.0) == 6.0
        assert rcu.pe("div", 6.0, 3.0) == 2.0
        assert rcu.pe("min", 2.0, 3.0) == 2.0
        assert rcu.pe("cmp", 2.0, 3.0) == 1.0

    def test_divide_by_zero(self, rcu):
        with pytest.raises(SimulationError):
            rcu.pe("div", 1.0, 0.0)

    def test_unknown_op(self, rcu):
        with pytest.raises(SimulationError):
            rcu.pe("sqrt", 1.0, 1.0)

    def test_ops_counted(self, rcu):
        rcu.pe("add", 1.0, 1.0)
        rcu.pe("div", 1.0, 1.0)
        assert rcu.counters.get("pe_op") == 2.0

    def test_latencies_exposed(self, rcu):
        assert rcu.pe_latency("div") > rcu.pe_latency("add")


class TestReconfiguration:
    def test_first_configuration(self, rcu):
        exposed = rcu.reconfigure(DataPathType.GEMV, drain_cycles=0)
        assert rcu.active_datapath is DataPathType.GEMV
        assert exposed == pytest.approx(rcu.config.reconfig_cycles)

    def test_same_datapath_is_free(self, rcu):
        rcu.reconfigure(DataPathType.GEMV, 0)
        assert rcu.reconfigure(DataPathType.GEMV, 0) == 0.0
        assert rcu.counters.get("config_write") == 1.0

    def test_hidden_under_long_drain(self, rcu):
        """§4.4: configuration latency hides under the tree drain."""
        rcu.reconfigure(DataPathType.GEMV, 0)
        exposed = rcu.reconfigure(DataPathType.D_SYMGS, drain_cycles=9)
        assert exposed == 0.0

    def test_partially_exposed_under_short_drain(self):
        rcu = ReconfigurableComputeUnit(RCUConfig(reconfig_cycles=10))
        rcu.reconfigure(DataPathType.GEMV, 0)
        assert rcu.reconfigure(DataPathType.D_SYMGS, 4) == pytest.approx(6.0)

    def test_ablation_exposes_fully(self):
        rcu = ReconfigurableComputeUnit(
            RCUConfig(reconfig_cycles=8, hide_under_drain=False))
        rcu.reconfigure(DataPathType.GEMV, 0)
        assert rcu.reconfigure(DataPathType.D_SYMGS, 100) == pytest.approx(8.0)

    def test_invalid_datapath(self, rcu):
        with pytest.raises(ReconfigurationError):
            rcu.reconfigure("gemv", 0)

    def test_negative_drain(self, rcu):
        with pytest.raises(ReconfigurationError):
            rcu.reconfigure(DataPathType.GEMV, -1)

    def test_switch_toggles_counted(self, rcu):
        """Toggle counts follow the Figure 9 interconnect
        differences (symmetric difference of connection sets), not a
        flat per-switch constant."""
        from repro.core.switch import CONFIGURATIONS, switch_distance
        rcu.reconfigure(DataPathType.GEMV, 0)
        rcu.reconfigure(DataPathType.D_SYMGS, 9)
        rcu.reconfigure(DataPathType.GEMV, 9)
        expected = len(CONFIGURATIONS[DataPathType.GEMV].connections) \
            + 2 * switch_distance(DataPathType.GEMV,
                                  DataPathType.D_SYMGS)
        assert rcu.counters.get("switch_toggle") == float(expected)


class TestReset:
    def test_reset_clears_everything(self, rcu):
        rcu.load_operand("x", np.ones(8))
        rcu.link.push(np.ones(8))
        rcu.reconfigure(DataPathType.GEMV, 0)
        rcu.reset()
        assert rcu.active_datapath is None
        assert rcu.link.empty
        assert rcu.counters.get("config_write") == 0.0
        with pytest.raises(SimulationError):
            rcu.operand("x")
