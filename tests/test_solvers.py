"""Tests for PCG (Figure 2), CG and the Jacobi smoother."""

import numpy as np
import pytest

from repro.errors import ConfigError, ConvergenceError, ShapeError
from repro.solvers import (
    AcceleratorBackend,
    JacobiBackend,
    ReferenceBackend,
    cg,
    jacobi,
    jacobi_sweep,
    make_backend,
    pcg,
)


@pytest.fixture
def system(banded_spd, rng):
    x_true = rng.normal(size=40)
    return banded_spd, banded_spd @ x_true, x_true


class TestPCGReference:
    def test_solves_system(self, system):
        a, b, x_true = system
        result = pcg(ReferenceBackend(a), b, tol=1e-10, max_iter=60)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-7)

    def test_residuals_monotone_at_convergence(self, system):
        a, b, _ = system
        result = pcg(ReferenceBackend(a), b, tol=1e-10)
        assert result.residual_norms[-1] < result.residual_norms[0]
        assert result.final_residual < 1e-10

    def test_zero_rhs(self, banded_spd):
        result = pcg(ReferenceBackend(banded_spd), np.zeros(40))
        assert result.converged
        np.testing.assert_allclose(result.x, 0.0)

    def test_x0_supported(self, system):
        a, b, x_true = system
        result = pcg(ReferenceBackend(a), b, tol=1e-10,
                     x0=x_true + 1e-3)
        assert result.converged
        assert result.iterations <= 12

    def test_shape_check(self, banded_spd):
        with pytest.raises(ShapeError):
            pcg(ReferenceBackend(banded_spd), np.zeros(3))

    def test_non_spd_detected(self, rng):
        a = np.diag([1.0, -1.0, 1.0, 1.0])
        a[0, 1] = a[1, 0] = 0.1
        with pytest.raises(ConvergenceError):
            pcg(ReferenceBackend(a), rng.normal(size=4), max_iter=50)

    def test_stall_raises_when_asked(self, system):
        a, b, _ = system
        with pytest.raises(ConvergenceError):
            pcg(ReferenceBackend(a), b, tol=1e-16, max_iter=1,
                raise_on_stall=True)


class TestPCGAccelerated:
    def test_matches_reference_solution(self, system):
        a, b, x_true = system
        ref = pcg(ReferenceBackend(a), b, tol=1e-10, max_iter=60)
        acc = pcg(AcceleratorBackend(a), b, tol=1e-10, max_iter=60)
        assert acc.converged
        assert acc.iterations == ref.iterations
        np.testing.assert_allclose(acc.x, ref.x, atol=1e-8)

    def test_report_accumulates_kernels(self, system):
        a, b, _ = system
        backend = AcceleratorBackend(a)
        result = pcg(backend, b, tol=1e-10, max_iter=60)
        assert result.report is not None
        assert result.report.cycles > 0
        breakdown = backend.kernel_breakdown()
        assert {"spmv", "symgs", "vector"} <= set(breakdown)
        # Figure 3: SymGS dominates PCG time.
        assert breakdown["symgs"] > breakdown["spmv"]
        assert breakdown["symgs"] > breakdown["vector"]

    def test_forward_only_smoother_is_single_sweep(self, system):
        """With symmetric_smoother=False the preconditioner is exactly
        one forward sweep from zero (and CG progress, while no longer
        guaranteed by theory, is still visible)."""
        from repro.kernels import forward_sweep
        a, b, _ = system
        backend = AcceleratorBackend(a, symmetric_smoother=False)
        r = np.arange(1.0, 41.0)
        z = backend.precondition(r)
        np.testing.assert_allclose(
            z, forward_sweep(a, r, np.zeros(40)), atol=1e-10
        )
        backend.reset_reports()
        result = pcg(backend, b, tol=1e-9, max_iter=120)
        assert min(result.residual_norms) < 0.05 * result.residual_norms[0]

    def test_make_backend_factory(self, banded_spd):
        assert isinstance(make_backend(banded_spd), ReferenceBackend)
        assert isinstance(make_backend(banded_spd, "alrescha"),
                          AcceleratorBackend)

    def test_make_backend_unknown_is_config_error(self, banded_spd):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="reference.*alrescha"):
            make_backend(banded_spd, "tpu")


class TestCG:
    def test_solves_system(self, system):
        a, b, x_true = system
        result = cg(ReferenceBackend(a), b, tol=1e-10, max_iter=200)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)

    def test_needs_more_iterations_than_pcg(self, system):
        """The reason PCG carries the SymGS smoother at all."""
        a, b, _ = system
        plain = cg(ReferenceBackend(a), b, tol=1e-10, max_iter=200)
        precond = pcg(ReferenceBackend(a), b, tol=1e-10, max_iter=200)
        assert precond.iterations < plain.iterations


class TestJacobi:
    def test_sweep_formula(self, banded_spd, rng):
        b = rng.normal(size=40)
        x = rng.normal(size=40)
        out = jacobi_sweep(banded_spd, b, x)
        expected = x + (b - banded_spd @ x) / np.diag(banded_spd)
        np.testing.assert_allclose(out, expected)

    def test_damped_iterations_reduce_residual(self, system):
        a, b, _ = system
        x = jacobi(a, b, sweeps=30)
        assert np.linalg.norm(b - a @ x) < np.linalg.norm(b)

    def test_zero_diagonal_rejected(self):
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(ConfigError):
            jacobi_sweep(a, np.ones(2), np.zeros(2))

    def test_jacobi_preconditioner_weaker_than_symgs(self, system):
        a, b, _ = system
        gs = pcg(ReferenceBackend(a), b, tol=1e-10, max_iter=200)
        jac = pcg(JacobiBackend(a, sweeps=1), b, tol=1e-10, max_iter=200)
        assert gs.iterations <= jac.iterations
