"""Degenerate and boundary inputs through the whole pipeline."""

import numpy as np
import pytest

from repro.core import Alrescha, KernelType, convert
from repro.formats import AlreschaMatrix, BCSRMatrix


class TestEmptyMatrix:
    def test_convert_empty(self):
        conv = convert(KernelType.SPMV, np.zeros((8, 8)), omega=8)
        assert len(conv.table) == 0
        assert conv.matrix.n_blocks == 0

    def test_spmv_on_empty(self):
        acc = Alrescha.from_matrix(KernelType.SPMV, np.zeros((8, 8)))
        y, report = acc.run_spmv(np.ones(8))
        np.testing.assert_allclose(y, 0.0)
        assert report.useful_bytes == 0.0

    def test_detailed_sim_on_empty(self):
        from repro.core import simulate_pass
        acc = Alrescha.from_matrix(KernelType.SPMV, np.zeros((8, 8)))
        report = simulate_pass(acc)
        assert report.cycles == 0.0
        assert report.n_jobs == 0

    def test_empty_symgs_sweep(self):
        """All-zero matrix: no blocks, so the sweep is the identity on
        x (and the 'solve' never divides by the missing diagonal)."""
        acc = Alrescha.from_matrix(KernelType.SYMGS, np.zeros((8, 8)))
        x, _ = acc.run_symgs_sweep(np.ones(8), np.full(8, 7.0))
        np.testing.assert_allclose(x, 7.0)


class TestTinyMatrices:
    def test_one_by_one(self):
        a = np.array([[4.0]])
        acc = Alrescha.from_matrix(KernelType.SPMV, a)
        y, _ = acc.run_spmv(np.array([3.0]))
        assert y[0] == pytest.approx(12.0)

    def test_one_by_one_symgs(self):
        a = np.array([[4.0]])
        acc = Alrescha.from_matrix(KernelType.SYMGS, a)
        x, _ = acc.run_symgs_sweep(np.array([8.0]), np.array([0.0]))
        assert x[0] == pytest.approx(2.0)

    def test_diagonal_only_matrix(self, rng):
        d = rng.uniform(1.0, 3.0, size=20)
        a = np.diag(d)
        acc = Alrescha.from_matrix(KernelType.SYMGS, a)
        b = rng.normal(size=20)
        x, report = acc.run_symgs_sweep(b, np.zeros(20))
        np.testing.assert_allclose(x, b / d, atol=1e-12)
        # No off-diagonal work: every entry is a D-SymGS.
        assert report.datapath_cycles.get("gemv", 0.0) == 0.0

    def test_single_off_diagonal_entry(self):
        a = np.eye(20) * 2.0
        a[3, 17] = 1.0
        acc = Alrescha.from_matrix(KernelType.SPMV, a)
        x = np.arange(20.0)
        y, _ = acc.run_spmv(x)
        np.testing.assert_allclose(y, a @ x)


class TestExactBlockBoundaries:
    @pytest.mark.parametrize("n", [8, 16, 64])
    def test_multiple_of_omega(self, n, rng):
        a = np.diag(rng.uniform(1.0, 2.0, size=n))
        a += np.diag(rng.normal(size=n - 1) * 0.1, k=1)
        a += np.diag(rng.normal(size=n - 1) * 0.1, k=-1)
        acc = Alrescha.from_matrix(KernelType.SPMV, a)
        x = rng.normal(size=n)
        y, _ = acc.run_spmv(x)
        np.testing.assert_allclose(y, a @ x, atol=1e-10)

    @pytest.mark.parametrize("n", [7, 9, 15, 17, 63, 65])
    def test_off_by_one_sizes(self, n, rng):
        a = np.diag(np.full(n, 3.0))
        if n > 1:
            a += np.diag(np.full(n - 1, -1.0), k=1)
            a += np.diag(np.full(n - 1, -1.0), k=-1)
        acc = Alrescha.from_matrix(KernelType.SYMGS, a)
        b = rng.normal(size=n)
        from repro.kernels import forward_sweep
        x, _ = acc.run_symgs_sweep(b, np.zeros(n))
        np.testing.assert_allclose(
            x, forward_sweep(a, b, np.zeros(n)), atol=1e-10)

    def test_last_block_row_padding_in_format(self):
        a = np.eye(9) * 2.0
        alr = AlreschaMatrix.from_dense(a, 8, symgs_layout=True)
        assert alr.n_block_rows == 2
        np.testing.assert_allclose(alr.to_dense(), a)

    def test_bcsr_single_padded_block(self):
        a = np.ones((3, 3))
        bcsr = BCSRMatrix.from_dense(a, 8)
        assert bcsr.n_blocks == 1
        assert bcsr.stored_values == 64
        np.testing.assert_allclose(bcsr.to_dense(), a)


class TestExtremeValues:
    def test_huge_values_survive_round_trip(self):
        a = np.diag(np.full(10, 1e300))
        acc = Alrescha.from_matrix(KernelType.SPMV, a)
        y, _ = acc.run_spmv(np.full(10, 1e-300))
        np.testing.assert_allclose(y, 1.0)

    def test_tiny_diagonal_still_solves(self, rng):
        a = np.diag(np.full(10, 1e-12))
        acc = Alrescha.from_matrix(KernelType.SYMGS, a)
        b = rng.normal(size=10)
        x, _ = acc.run_symgs_sweep(b, np.zeros(10))
        np.testing.assert_allclose(x, b / 1e-12, rtol=1e-12)

    def test_negative_diagonal_allowed(self, rng):
        """Gauss-Seidel only needs a non-zero diagonal."""
        a = np.diag(np.full(10, -2.0))
        acc = Alrescha.from_matrix(KernelType.SYMGS, a)
        b = rng.normal(size=10)
        x, _ = acc.run_symgs_sweep(b, np.zeros(10))
        np.testing.assert_allclose(x, b / -2.0)
