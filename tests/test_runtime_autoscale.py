"""Elastic pool capacity: the autoscaler and shaped workload traces.

The contracts under test:

* **Inert when off** — ``autoscale=None`` (the default) produces a
  report with ``autoscale is None`` and no elasticity lines, and the
  plain-Poisson trace shape reproduces the historical draw sequence
  (the fingerprint corpus pins the full field identity; here we pin
  the mechanism).
* **Deterministic when on** — one seed + trace + knob set reproduces
  the identical scale history and a byte-identical canonical report.
* **Useful when on** — on a bursty trace, scaling within ``[2, 8]``
  beats a frozen two-device pool on queue peak at equal correctness.
* **Cheap when primed** — a scale-up against a warm artifact store
  compiles nothing: every programming phase of the added device is a
  store hit, counted by ``prime_hits``.
* **Safe when shrinking** — drain-before-remove, checked by the
  ``check_no_service_on_draining_device`` trace invariant.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.observe import Tracer, check_trace
from repro.runtime import (
    AutoscaleConfig,
    TraceSpec,
    make_trace,
    serve,
    serve_fleet,
)
from repro.runtime.fleet import FleetConfig, fleet_report_json
from repro.runtime.metrics import report_json


#: A config that reacts fast enough for short test traces.
FAST = dict(cooldown_cycles=8_000.0, eval_interval_cycles=2_000.0,
            provision_cycles=1_000.0)


def bursty_trace(n=80, seed=3):
    return make_trace(TraceSpec(n_requests=n, seed=seed, scale=0.04,
                                shape="bursty+zipf"))


class TestAutoscaleConfig:
    def test_defaults_validate(self):
        cfg = AutoscaleConfig()
        assert cfg.min_devices == 1
        assert cfg.max_devices == 8

    @pytest.mark.parametrize("kwargs", [
        dict(min_devices=0),
        dict(min_devices=4, max_devices=2),
        dict(cooldown_cycles=-1.0),
        dict(eval_interval_cycles=0.0),
        dict(provision_cycles=-5.0),
        dict(queue_high=0.0),
        dict(queue_low=5.0, queue_high=4.0),
        dict(failure_rate_high=0.0),
        dict(failure_rate_high=1.5),
    ])
    def test_bad_knobs_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            AutoscaleConfig(**kwargs)

    def test_parse_min_max(self):
        cfg = AutoscaleConfig.parse("2:8")
        assert (cfg.min_devices, cfg.max_devices) == (2, 8)
        assert cfg.cooldown_cycles == AutoscaleConfig().cooldown_cycles

    def test_parse_with_cooldown(self):
        cfg = AutoscaleConfig.parse("1:6:5000")
        assert cfg.cooldown_cycles == 5000.0

    @pytest.mark.parametrize("spec,token", [
        ("", "empty"),
        ("4", "fields"),
        ("1:2:3:4", "fields"),
        ("x:8", "'x'"),
        ("2:y", "'y'"),
        ("2:8:z", "'z'"),
        ("8:2", "min_devices"),
    ])
    def test_parse_bad_specs_name_the_token(self, spec, token):
        with pytest.raises(ConfigError) as exc:
            AutoscaleConfig.parse(spec)
        assert token in str(exc.value)


class TestAutoscaleOff:
    def test_default_report_has_no_autoscale_section(self):
        _, report = serve(n_requests=20, n_devices=2, seed=3,
                          scale=0.04, execution="model")
        assert report.autoscale is None
        assert "autoscale" not in report.render()
        decoded = json.loads(report_json(report))
        assert decoded["autoscale"] is None


class TestAutoscaleServe:
    def test_determinism_byte_identical_reports(self):
        cfg = AutoscaleConfig(min_devices=1, max_devices=6, **FAST)
        runs = []
        for _ in range(2):
            _, report = serve(n_requests=0, n_devices=2, seed=3,
                              scale=0.04, execution="model",
                              trace=bursty_trace(), autoscale=cfg)
            runs.append(report_json(report))
        assert runs[0] == runs[1]
        decoded = json.loads(runs[0])
        assert decoded["autoscale"]["scale_ups"] > 0

    def test_min_floor_grows_pool_at_start(self):
        cfg = AutoscaleConfig(min_devices=4, max_devices=6)
        _, report = serve(n_requests=10, n_devices=1, seed=3,
                          scale=0.04, execution="model", autoscale=cfg)
        scale = report.autoscale
        assert scale.devices_added >= 3
        assert scale.devices_final >= 4
        assert len(report.devices) >= 4

    def test_start_above_max_is_a_config_error(self):
        cfg = AutoscaleConfig(min_devices=1, max_devices=2)
        with pytest.raises(ConfigError):
            serve(n_requests=5, n_devices=4, seed=0, scale=0.04,
                  execution="model", autoscale=cfg)

    def test_bursty_queue_peak_beats_frozen_pool(self):
        # The acceptance criterion: elasticity absorbs the burst.
        trace = bursty_trace(n=200)
        _, frozen = serve(n_requests=0, n_devices=2, seed=3,
                          scale=0.04, execution="model", trace=trace)
        cfg = AutoscaleConfig(min_devices=2, max_devices=8,
                              cooldown_cycles=2_000.0,
                              eval_interval_cycles=500.0,
                              provision_cycles=500.0, queue_high=2.0)
        _, elastic = serve(n_requests=0, n_devices=2, seed=3,
                           scale=0.04, execution="model", trace=trace,
                           autoscale=cfg)
        assert frozen.failed == elastic.failed == 0
        assert elastic.autoscale.scale_ups > 0
        assert elastic.queue_peak < frozen.queue_peak

    def test_capacity_integral_and_peak_are_consistent(self):
        cfg = AutoscaleConfig(min_devices=1, max_devices=6, **FAST)
        _, report = serve(n_requests=0, n_devices=2, seed=3,
                          scale=0.04, execution="model",
                          trace=bursty_trace(), autoscale=cfg)
        scale = report.autoscale
        assert scale.devices_peak <= cfg.max_devices
        assert scale.devices_final >= cfg.min_devices
        # The integral is bounded by peak capacity over the makespan.
        assert 0.0 < scale.device_cycles_provisioned \
            <= scale.devices_peak * report.makespan_cycles + 1e-6
        assert scale.devices_added == scale.scale_ups \
            + max(0, cfg.min_devices - 2)

    def test_render_shows_elasticity_lines(self):
        cfg = AutoscaleConfig(min_devices=1, max_devices=6, **FAST)
        _, report = serve(n_requests=0, n_devices=2, seed=3,
                          scale=0.04, execution="model",
                          trace=bursty_trace(), autoscale=cfg)
        text = report.render()
        assert "autoscale       : [1, 6]" in text
        assert "provisioned     :" in text

    def test_drain_invariant_holds_under_scaling(self):
        tracer = Tracer()
        cfg = AutoscaleConfig(min_devices=1, max_devices=6, **FAST)
        _, report = serve(n_requests=0, n_devices=2, seed=3,
                          scale=0.04, execution="model", trace=bursty_trace(),
                          tracer=tracer, autoscale=cfg)
        assert report.autoscale.scale_downs > 0, "no drain exercised"
        assert check_trace(tracer) == []


class TestStorePrimedScaleUp:
    def test_warm_store_scale_up_compiles_nothing(self, tmp_path):
        from repro.store import ArtifactStore

        trace = bursty_trace(n=100)
        # Cold pass at full width warms the store with every workload
        # the trace touches.
        warm_store = ArtifactStore(tmp_path / "cache")
        serve(n_requests=0, n_devices=8, seed=3, scale=0.04,
              trace=trace, artifact_store=warm_store)
        assert warm_store.report().conversions_compiled > 0

        # Elastic pass against the warm store: the scale-ups must be
        # pure store hits — zero compilations anywhere in the run, and
        # the priming loop's hits are counted on the report.
        store = ArtifactStore(tmp_path / "cache")
        cfg = AutoscaleConfig(min_devices=2, max_devices=8, **FAST)
        _, report = serve(n_requests=0, n_devices=2, seed=3,
                          scale=0.04, trace=trace, artifact_store=store,
                          autoscale=cfg)
        assert report.autoscale.scale_ups > 0
        assert store.report().conversions_compiled == 0
        assert report.autoscale.prime_hits > 0


class TestFleetAutoscale:
    def test_fleet_aggregates_pool_autoscalers(self):
        cfg = AutoscaleConfig(min_devices=1, max_devices=5, **FAST)
        _, report = serve_fleet(
            n_requests=0, n_devices=2, seed=3, scale=0.04,
            trace=bursty_trace(n=120), execution="model",
            fleet_config=FleetConfig(n_pools=2, replicas=1),
            autoscale=cfg)
        agg = report.autoscale
        assert agg is not None
        per_pool = [p.report.autoscale for p in report.pool_stats]
        assert all(s is not None for s in per_pool)
        assert agg.evals == sum(s.evals for s in per_pool)
        assert agg.devices_added == sum(s.devices_added
                                        for s in per_pool)
        assert agg.devices_peak == sum(s.devices_peak
                                       for s in per_pool)

    def test_fleet_off_keeps_autoscale_none(self):
        _, report = serve_fleet(
            n_requests=30, n_devices=2, seed=3, scale=0.04,
            execution="model",
            fleet_config=FleetConfig(n_pools=2, replicas=1))
        assert report.autoscale is None
        assert all(p.report.autoscale is None
                   for p in report.pool_stats)

    def test_fleet_report_json_deterministic(self):
        cfg = AutoscaleConfig(min_devices=1, max_devices=5, **FAST)
        payloads = []
        for _ in range(2):
            _, report = serve_fleet(
                n_requests=0, n_devices=2, seed=3, scale=0.04,
                trace=bursty_trace(n=120), execution="model",
                fleet_config=FleetConfig(n_pools=2, replicas=1),
                autoscale=cfg)
            payloads.append(fleet_report_json(report))
        assert payloads[0] == payloads[1]


class TestTraceShapes:
    def test_default_spec_is_exponential(self):
        assert TraceSpec(n_requests=5).shape == "exponential"

    @pytest.mark.parametrize("shape", [
        "bogus", "bursty+bogus", "bursty+bursty", "exponential+zipf",
    ])
    def test_bad_shapes_raise_config_error(self, shape):
        with pytest.raises(ConfigError):
            TraceSpec(n_requests=5, shape=shape)

    @pytest.mark.parametrize("kwargs", [
        dict(burst_factor=0.5),
        dict(burst_mean_cycles=0.0),
        dict(quiet_mean_cycles=-1.0),
        dict(diurnal_period_cycles=0.0),
        dict(diurnal_amplitude=1.0),
        dict(zipf_exponent=0.0),
    ])
    def test_bad_shape_knobs_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            TraceSpec(n_requests=5, shape="bursty+diurnal+zipf",
                      **kwargs)

    def test_shaped_traces_are_deterministic(self):
        a = make_trace(TraceSpec(n_requests=40, seed=9,
                                 shape="bursty+diurnal+zipf"))
        b = make_trace(TraceSpec(n_requests=40, seed=9,
                                 shape="bursty+diurnal+zipf"))
        assert a == b

    def test_zipf_skews_workload_popularity(self):
        from collections import Counter

        spec = TraceSpec(n_requests=400, seed=3, shape="zipf",
                         zipf_exponent=1.5)
        counts = Counter((j.dataset, j.kernel)
                         for j in make_trace(spec))
        ranked = [counts.get(w, 0) for w in spec.workloads]
        # Rank-1 dominates; the head outweighs the tail.
        assert ranked[0] == max(ranked)
        assert ranked[0] > 2 * ranked[-1]

    def test_bursty_inflates_interarrival_variance(self):
        import statistics

        def cv(jobs):
            gaps = [b.arrival_cycle - a.arrival_cycle
                    for a, b in zip(jobs, jobs[1:])]
            return statistics.pstdev(gaps) / statistics.mean(gaps)

        plain = make_trace(TraceSpec(n_requests=300, seed=3))
        burst = make_trace(TraceSpec(n_requests=300, seed=3,
                                     shape="bursty",
                                     burst_factor=10.0))
        assert cv(burst) > cv(plain)

    def test_exponential_shape_is_the_verbatim_legacy_draw(self):
        legacy = make_trace(TraceSpec(n_requests=60, seed=7))
        explicit = make_trace(TraceSpec(n_requests=60, seed=7,
                                        shape="exponential"))
        assert legacy == explicit
