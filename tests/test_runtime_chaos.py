"""Chaos survival, hedged dispatch, and the inertness guarantee.

Three contracts pinned here:

1. **Inert when off** — chaos-free, hedge-free serving is
   field-identical to the pre-chaos scheduler.  A 90-case fingerprint
   corpus (``tests/data/poolreport_fingerprints.json``, captured from
   the tree before the chaos layer landed) is replayed and compared
   field-for-field.

2. **Survival under storm** — with tight incident gaps every job still
   reaches a terminal status, nothing FAILs from infrastructure loss
   alone, no device serves inside its own down interval (trace
   invariant), and the report counters reconcile with the per-device
   chaos logs.

3. **Determinism** — same seed ⇒ byte-identical canonical report JSON,
   chaos, hedging and all (hypothesis property).
"""

import dataclasses
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.observe import Tracer, check_trace
from repro.runtime import (
    ChaosModel,
    JobStatus,
    Scheduler,
    SchedulerConfig,
    DevicePool,
    serve,
)
from repro.runtime.metrics import PoolReport, report_json

FINGERPRINTS = pathlib.Path(__file__).parent / "data" \
    / "poolreport_fingerprints.json"

#: Storm knobs: the default mean gap (25k cycles / rate) exceeds a
#: short test trace's makespan, so storms here tighten the gaps to
#: land several incidents inside ~20k simulated cycles.
def storm(seed, rate=0.2, kinds=None):
    kwargs = dict(rate=rate, seed=seed, mean_gap_cycles=1500.0,
                  mean_crash_cycles=3000.0, mean_hang_cycles=1500.0)
    if kinds is not None:
        kwargs["kinds"] = kinds
    return ChaosModel(**kwargs)


def storm_serve(seed, *, chaos=None, hedge_after=None, tracer=None,
                n_requests=60, n_devices=3, fault_rate=0.1):
    return serve(n_requests=n_requests, n_devices=n_devices,
                 fault_rate=fault_rate, seed=seed, scale=0.04,
                 execution="model", chaos=chaos,
                 hedge_after=hedge_after, tracer=tracer)


# ----------------------------------------------------------------------
# 1. Inertness: chaos off == the pre-chaos scheduler, field for field
# ----------------------------------------------------------------------
class TestChaosFreeIdentity:
    def test_fingerprint_corpus(self):
        corpus = json.loads(FINGERPRINTS.read_text())
        assert len(corpus) == 90
        for entry in corpus:
            _, report = serve(n_requests=20, scale=0.04,
                              execution="model", **entry["case"])
            got = dataclasses.asdict(report)
            want = entry["report"]
            # Compare only fields present at capture time: counters
            # added later (zero when chaos is off) don't invalidate
            # the corpus.
            for key, expect in want.items():
                if key == "devices":
                    assert len(got["devices"]) == len(expect)
                    for gd, wd in zip(got["devices"], expect):
                        for dk, dv in wd.items():
                            assert gd[dk] == dv, \
                                f"{entry['case']}: devices[].{dk}"
                else:
                    assert got[key] == expect, f"{entry['case']}: {key}"

    def test_eager_path_without_chaos_or_hedge(self):
        pool = DevicePool(2, fault_rate=0.0, seed=0)
        assert Scheduler(pool)._lifecycle is False
        pool2 = DevicePool(2, fault_rate=0.0, seed=0,
                           chaos=storm(0))
        assert Scheduler(pool2)._lifecycle is True
        pool3 = DevicePool(2, fault_rate=0.0, seed=0)
        sched = Scheduler(pool3, SchedulerConfig(hedge_after=2.0))
        assert sched._lifecycle is True

    def test_zero_rate_chaos_is_dropped_by_pool(self):
        pool = DevicePool(2, seed=0, chaos=ChaosModel(rate=0.0))
        assert pool.chaos is None
        assert Scheduler(pool)._lifecycle is False

    def test_new_counters_zero_when_off(self):
        _, rep = storm_serve(3)
        assert (rep.crashes, rep.hangs, rep.recoveries) == (0, 0, 0)
        assert (rep.hedges_launched, rep.hedges_won) == (0, 0)
        for d in rep.devices:
            assert d.downtime_cycles == 0.0
            assert (d.crashes, d.hangs) == (0, 0)


# ----------------------------------------------------------------------
# 2. Survival under storm
# ----------------------------------------------------------------------
class TestStormSurvival:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_job_terminal_and_none_lost_to_infrastructure(
            self, seed):
        tr = Tracer()
        results, rep = storm_serve(seed, chaos=storm(seed),
                                   hedge_after=1.5, tracer=tr)
        assert len(results) == 60
        assert {r.job_id for r in results} == set(range(60))
        for r in results:
            assert r.status in JobStatus
            if r.status is JobStatus.FAILED:
                # Infrastructure loss alone never FAILs a job: crashes
                # salvage onto another device or degrade to reference.
                assert "crash" not in r.error
        assert rep.ok + rep.timeout + rep.degraded + rep.rejected \
            + rep.failed == 60
        assert check_trace(tr) == []

    def test_storm_actually_storms(self):
        # Guard against a silently-inert storm: the knobs above must
        # produce incidents inside the trace, or every other assertion
        # in this class is vacuous.
        seen = 0
        for seed in range(6):
            _, rep = storm_serve(seed, chaos=storm(seed))
            seen += rep.crashes + rep.hangs
        assert seen > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_counters_reconcile_with_chaos_log(self, seed):
        chaos = storm(seed)
        pool = DevicePool(3, fault_rate=0.1, seed=seed,
                          execution="model", chaos=chaos)
        from repro.runtime.jobs import TraceSpec, make_trace
        trace = make_trace(TraceSpec(n_requests=60, seed=seed,
                                     scale=0.04))
        _, rep = Scheduler(pool).run(trace)
        drawn_crashes = sum(d.chaos.drawn_of("crash")
                            for d in pool.devices)
        drawn_hangs = sum(d.chaos.drawn_of("hang")
                          for d in pool.devices)
        # Applied incidents are the drawn ones whose start landed
        # before the run ended; the final draw per device is pending.
        assert rep.crashes <= drawn_crashes
        assert rep.hangs <= drawn_hangs
        # A recovery is consumed per applied incident, except any
        # still open when the last job finished.
        assert rep.recoveries <= rep.crashes + rep.hangs
        assert rep.crashes == sum(d.crashes for d in rep.devices)
        assert rep.hangs == sum(d.hangs for d in rep.devices)
        for stat, dev in zip(rep.devices, pool.devices):
            assert stat.crashes == dev.crashes
            assert stat.hangs == dev.hangs
            assert stat.downtime_cycles == \
                pytest.approx(dev.downtime_cycles)
            if stat.crashes or stat.hangs:
                assert stat.downtime_cycles > 0.0

    def test_crash_only_storm_single_device_recovers(self):
        # One device, crash-only chaos: jobs in flight at a crash are
        # salvaged and retried on the same device after quarantine
        # lifts (the refund discards it from ``tried``), or degrade to
        # reference — never FAILED.
        chaos = storm(11, kinds=("crash",))
        results, rep = storm_serve(11, chaos=chaos, n_devices=1,
                                   fault_rate=0.0)
        assert rep.failed == 0
        assert rep.crashes > 0
        assert rep.hangs == 0

    def test_hang_only_storm_slows_but_completes(self):
        tr = Tracer()
        chaos = storm(5, kinds=("hang",))
        results, rep = storm_serve(5, chaos=chaos, fault_rate=0.0,
                                   tracer=tr)
        _, clean = storm_serve(5, fault_rate=0.0)
        assert rep.crashes == 0
        assert rep.hangs > 0
        assert rep.failed == 0
        # Stalls postpone completions, so the storm's makespan can
        # only move one way relative to the clean run.
        assert rep.makespan_cycles >= clean.makespan_cycles
        assert check_trace(tr) == []

    def test_quarantined_breaker_refuses_until_recovery(self):
        # Drive one crash by hand through the scheduler's own hooks.
        pool = DevicePool(2, seed=0, execution="model",
                          chaos=storm(0))
        dev = pool.devices[0]
        dev.breaker.force_open(100.0)
        assert dev.breaker.quarantined
        assert not dev.breaker.allows(100.0)
        # Even far past the cooldown, quarantine holds.
        assert not dev.breaker.allows(1e9)
        assert dev.breaker.reopen_at is None
        dev.breaker.end_quarantine(5000.0)
        assert not dev.breaker.quarantined
        # Immediately probeable: next allows() is the half-open probe.
        assert dev.breaker.allows(5000.0)


# ----------------------------------------------------------------------
# 3. Hedged dispatch
# ----------------------------------------------------------------------
class TestHedging:
    def hedged_run(self, seed, tracer=None):
        return storm_serve(seed, chaos=storm(seed, rate=0.3),
                           hedge_after=1.2, tracer=tracer)

    def test_hedges_fire_and_accounting_reconciles(self):
        launched = won = 0
        hedged_results = 0
        for seed in range(8):
            results, rep = self.hedged_run(seed)
            launched += rep.hedges_launched
            won += rep.hedges_won
            hedged_results += sum(1 for r in results if r.hedged)
            assert rep.hedges_won <= rep.hedges_launched
            assert rep.failed == 0
        # The storm slows devices enough that hedges actually launch
        # somewhere in the sweep — and some of them win.
        assert launched > 0
        assert won > 0
        assert hedged_results == won

    def test_hedge_trace_invariants_hold(self):
        tr = Tracer()
        self.hedged_run(2, tracer=tr)
        assert check_trace(tr) == []

    def test_no_hedging_on_single_device(self):
        _, rep = storm_serve(1, n_devices=1,
                             chaos=storm(1, rate=0.3),
                             hedge_after=1.2)
        assert rep.hedges_launched == 0

    def test_hedge_after_must_be_positive(self):
        pool = DevicePool(2, seed=0)
        with pytest.raises(ConfigError):
            Scheduler(pool, SchedulerConfig(hedge_after=0.0))
        with pytest.raises(ConfigError):
            Scheduler(pool, SchedulerConfig(hedge_after=-1.5))

    def test_busy_cycles_stay_consistent_under_cancellation(self):
        # Cancelled hedge attempts are trimmed to the cycles actually
        # spent, so total busy time never exceeds the makespan times
        # the device count.
        for seed in range(4):
            _, rep = self.hedged_run(seed)
            total_busy = sum(d.busy_cycles for d in rep.devices)
            assert total_busy <= rep.makespan_cycles * len(rep.devices)
            for d in rep.devices:
                assert d.busy_cycles >= 0.0


# ----------------------------------------------------------------------
# 4. Determinism: same seed => byte-identical canonical report
# ----------------------------------------------------------------------
class TestDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           rate=st.sampled_from([0.0, 0.15, 0.3]),
           hedge=st.sampled_from([None, 1.2, 2.0]))
    @settings(max_examples=8, deadline=None)
    def test_seed_pins_report_bytes(self, seed, rate, hedge):
        def run():
            chaos = storm(seed, rate=rate) if rate else None
            _, rep = serve(n_requests=30, n_devices=3,
                           fault_rate=0.1, seed=seed, scale=0.04,
                           execution="model", chaos=chaos,
                           hedge_after=hedge)
            return rep
        a, b = run(), run()
        assert report_json(a) == report_json(b)
        for f in dataclasses.fields(PoolReport):
            assert getattr(a, f.name) == getattr(b, f.name), f.name

    def test_report_json_is_canonical(self):
        _, rep = storm_serve(0, chaos=storm(0), hedge_after=1.5)
        text = report_json(rep)
        assert text.endswith("\n")
        decoded = json.loads(text)
        raw = dataclasses.asdict(rep)
        raw["devices"] = list(raw["devices"])  # JSON has no tuples
        assert decoded == raw
        # Canonical form: re-encoding the decoded dict with the same
        # options reproduces the bytes.
        assert json.dumps(decoded, sort_keys=True,
                          separators=(",", ":")) + "\n" == text
