"""Unit tests for the RCU FIFOs and the LIFO link stack."""

import pytest

from repro.errors import SimulationError
from repro.sim import Fifo, LinkStack


class TestFifo:
    def test_fifo_order(self):
        f = Fifo("a")
        f.push(1)
        f.push(2)
        f.push(3)
        assert [f.pop(), f.pop(), f.pop()] == [1, 2, 3]

    def test_underflow(self):
        with pytest.raises(SimulationError):
            Fifo("a").pop()

    def test_capacity_overflow(self):
        f = Fifo("a", capacity=1)
        f.push(1)
        with pytest.raises(SimulationError):
            f.push(2)

    def test_counters(self):
        f = Fifo("A_fifo")
        f.push(1)
        f.pop()
        assert f.counters.get("A_fifo_pushes") == 1.0
        assert f.counters.get("A_fifo_pops") == 1.0

    def test_peak_occupancy(self):
        f = Fifo("a")
        f.push(1)
        f.push(2)
        f.pop()
        f.push(3)
        assert f.peak_occupancy == 2

    def test_len_and_empty(self):
        f = Fifo("a")
        assert f.empty
        f.push(1)
        assert len(f) == 1
        assert not f.empty

    def test_clear(self):
        f = Fifo("a")
        f.push(1)
        f.clear()
        assert f.empty


class TestLinkStack:
    def test_lifo_order(self):
        s = LinkStack()
        s.push("gemv1")
        s.push("gemv2")
        assert s.pop() == "gemv2"
        assert s.pop() == "gemv1"

    def test_pop_all_most_recent_first(self):
        s = LinkStack()
        for i in range(4):
            s.push(i)
        assert s.pop_all() == [3, 2, 1, 0]
        assert s.empty

    def test_underflow(self):
        with pytest.raises(SimulationError):
            LinkStack().pop()

    def test_capacity(self):
        s = LinkStack(capacity=2)
        s.push(1)
        s.push(2)
        with pytest.raises(SimulationError):
            s.push(3)

    def test_counters_use_name(self):
        s = LinkStack("link")
        s.push(1)
        s.pop()
        assert s.counters.get("link_pushes") == 1.0
        assert s.counters.get("link_pops") == 1.0

    def test_peak_occupancy(self):
        s = LinkStack()
        s.push(1)
        s.push(2)
        s.push(3)
        s.pop_all()
        assert s.peak_occupancy == 3
