"""Unit tests for the streaming-memory model."""

import pytest

from repro.errors import SimulationError
from repro.sim import StreamingMemory


class TestBandwidth:
    def test_table5_bytes_per_cycle(self):
        mem = StreamingMemory()
        # 288 GB/s at 2.5 GHz = 115.2 B/cycle.
        assert mem.bytes_per_cycle == pytest.approx(115.2)

    def test_sequential_stream_cost(self):
        mem = StreamingMemory()
        cycles = mem.stream_cycles(1152, sequential=True)
        assert cycles == pytest.approx(10.0)

    def test_stream_doubles(self):
        mem = StreamingMemory()
        # 14.4 doubles = 115.2 B, padded to two 64 B bursts = 128 B.
        assert mem.stream_doubles(14.4) == pytest.approx(128.0 / 115.2)

    def test_zero_bytes_free(self):
        mem = StreamingMemory()
        assert mem.stream_cycles(0) == 0.0
        assert mem.total_bytes == 0.0


class TestBurstPadding:
    def test_random_access_rounds_to_bursts(self):
        mem = StreamingMemory(burst_bytes=64)
        mem.stream_cycles(8, sequential=False)
        assert mem.total_bytes == pytest.approx(64.0)

    def test_random_access_multiple_bursts(self):
        mem = StreamingMemory(burst_bytes=64)
        mem.stream_cycles(65, sequential=False)
        assert mem.total_bytes == pytest.approx(128.0)

    def test_sequential_pads_to_bursts(self):
        """Regression: sequential requests used to bypass burst padding,
        contradicting the class docstring ("rounding each request up to
        whole bursts") — stream_cycles(200) charged exactly 200 bytes."""
        mem = StreamingMemory(burst_bytes=64)
        cycles = mem.stream_cycles(200, sequential=True)
        assert mem.total_bytes == pytest.approx(256.0)
        assert cycles == pytest.approx(256.0 / mem.bytes_per_cycle)

    def test_burst_aligned_request_unchanged(self):
        mem = StreamingMemory(burst_bytes=64)
        cycles = mem.stream_cycles(512, sequential=True)
        assert mem.total_bytes == pytest.approx(512.0)
        assert cycles == pytest.approx(512.0 / mem.bytes_per_cycle)

    def test_fractional_bytes_round_up(self):
        mem = StreamingMemory(burst_bytes=64)
        mem.stream_cycles(64.2, sequential=True)
        assert mem.total_bytes == pytest.approx(128.0)


class TestCountersAndUtilization:
    def test_request_counting(self):
        mem = StreamingMemory()
        mem.stream_cycles(100)
        mem.stream_cycles(100, sequential=False)
        assert mem.counters.get("dram_requests") == 2.0
        assert mem.counters.get("dram_random_requests") == 1.0

    def test_full_utilization(self):
        mem = StreamingMemory()
        cycles = mem.stream_cycles(1152)
        assert mem.utilization(cycles) == pytest.approx(1.0)

    def test_half_utilization(self):
        mem = StreamingMemory()
        cycles = mem.stream_cycles(1152)
        assert mem.utilization(2 * cycles) == pytest.approx(0.5)

    def test_zero_cycles_utilization(self):
        assert StreamingMemory().utilization(0.0) == 0.0

    def test_reset(self):
        mem = StreamingMemory()
        mem.stream_cycles(100)
        mem.reset()
        assert mem.total_bytes == 0.0


class TestBlockRun:
    def test_matches_individual_streams(self):
        one_by_one = StreamingMemory()
        bulk = StreamingMemory()
        total = sum(one_by_one.stream_cycles(512.0) for _ in range(7))
        assert bulk.stream_block_run(7, 512.0) == pytest.approx(total)
        assert bulk.counters.as_dict() == one_by_one.counters.as_dict()

    def test_unaligned_blocks_pad_each(self):
        one_by_one = StreamingMemory()
        bulk = StreamingMemory()
        total = sum(one_by_one.stream_cycles(200.0) for _ in range(3))
        assert bulk.stream_block_run(3, 200.0) == pytest.approx(total)
        assert bulk.counters.as_dict() == one_by_one.counters.as_dict()

    def test_zero_blocks_free(self):
        mem = StreamingMemory()
        assert mem.stream_block_run(0, 512.0) == 0.0
        assert mem.stream_block_run(5, 0.0) == 0.0
        assert mem.total_bytes == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(SimulationError):
            StreamingMemory().stream_block_run(-1, 512.0)
        with pytest.raises(SimulationError):
            StreamingMemory().stream_block_run(1, -8.0)


class TestCostQuery:
    def test_cost_matches_stream_cycles_without_charging(self):
        mem = StreamingMemory()
        cost = mem.cost_cycles(1000.0)
        assert mem.counters.get("dram_bytes") == 0.0
        assert mem.counters.get("dram_requests") == 0.0
        assert cost == mem.stream_cycles(1000.0)

    def test_zero_and_negative(self):
        mem = StreamingMemory()
        assert mem.cost_cycles(0.0) == 0.0
        with pytest.raises(SimulationError):
            mem.cost_cycles(-1.0)


class TestErrors:
    def test_negative_bytes(self):
        with pytest.raises(SimulationError):
            StreamingMemory().stream_cycles(-1)

    def test_invalid_bandwidth(self):
        with pytest.raises(SimulationError):
            StreamingMemory(bandwidth_bytes_per_s=0)

    def test_invalid_burst(self):
        with pytest.raises(SimulationError):
            StreamingMemory(burst_bytes=0)
