"""Unit tests for the streaming-memory model."""

import pytest

from repro.errors import SimulationError
from repro.sim import StreamingMemory


class TestBandwidth:
    def test_table5_bytes_per_cycle(self):
        mem = StreamingMemory()
        # 288 GB/s at 2.5 GHz = 115.2 B/cycle.
        assert mem.bytes_per_cycle == pytest.approx(115.2)

    def test_sequential_stream_cost(self):
        mem = StreamingMemory()
        cycles = mem.stream_cycles(1152, sequential=True)
        assert cycles == pytest.approx(10.0)

    def test_stream_doubles(self):
        mem = StreamingMemory()
        assert mem.stream_doubles(14.4) == pytest.approx(1.0)

    def test_zero_bytes_free(self):
        mem = StreamingMemory()
        assert mem.stream_cycles(0) == 0.0
        assert mem.total_bytes == 0.0


class TestBurstPadding:
    def test_random_access_rounds_to_bursts(self):
        mem = StreamingMemory(burst_bytes=64)
        mem.stream_cycles(8, sequential=False)
        assert mem.total_bytes == pytest.approx(64.0)

    def test_random_access_multiple_bursts(self):
        mem = StreamingMemory(burst_bytes=64)
        mem.stream_cycles(65, sequential=False)
        assert mem.total_bytes == pytest.approx(128.0)

    def test_sequential_not_padded(self):
        mem = StreamingMemory(burst_bytes=64)
        mem.stream_cycles(8, sequential=True)
        assert mem.total_bytes == pytest.approx(8.0)


class TestCountersAndUtilization:
    def test_request_counting(self):
        mem = StreamingMemory()
        mem.stream_cycles(100)
        mem.stream_cycles(100, sequential=False)
        assert mem.counters.get("dram_requests") == 2.0
        assert mem.counters.get("dram_random_requests") == 1.0

    def test_full_utilization(self):
        mem = StreamingMemory()
        cycles = mem.stream_cycles(1152)
        assert mem.utilization(cycles) == pytest.approx(1.0)

    def test_half_utilization(self):
        mem = StreamingMemory()
        cycles = mem.stream_cycles(1152)
        assert mem.utilization(2 * cycles) == pytest.approx(0.5)

    def test_zero_cycles_utilization(self):
        assert StreamingMemory().utilization(0.0) == 0.0

    def test_reset(self):
        mem = StreamingMemory()
        mem.stream_cycles(100)
        mem.reset()
        assert mem.total_bytes == 0.0


class TestErrors:
    def test_negative_bytes(self):
        with pytest.raises(SimulationError):
            StreamingMemory().stream_cycles(-1)

    def test_invalid_bandwidth(self):
        with pytest.raises(SimulationError):
            StreamingMemory(bandwidth_bytes_per_s=0)

    def test_invalid_burst(self):
        with pytest.raises(SimulationError):
            StreamingMemory(burst_bytes=0)
