"""Unit tests for Algorithm 1 (kernel -> dense data paths)."""

import numpy as np
import pytest

from repro.core import DataPathType, KernelType, NO_CACHE_WRITE, OperandPort
from repro.core import convert
from repro.core.config import AccessOrder
from repro.errors import ConfigError
from repro.formats import BCSRMatrix


class TestStraightforwardKernels:
    @pytest.mark.parametrize("kernel", [
        KernelType.SPMV, KernelType.BFS, KernelType.SSSP,
        KernelType.PAGERANK,
    ])
    def test_one_entry_per_nonempty_block(self, spd_small, kernel):
        conv = convert(kernel, spd_small, omega=8)
        bcsr = BCSRMatrix.from_dense(spd_small, 8)
        assert len(conv.table) == bcsr.n_blocks

    def test_spmv_entries_are_gemv(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=8)
        assert all(e.dp is DataPathType.GEMV for e in conv.table)
        assert conv.n_dependent == 0

    def test_entries_carry_block_indices(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=8)
        for e in conv.table:
            assert e.inx_in == e.block_col * 8
            assert e.inx_out == e.block_row * 8
            assert e.order is AccessOrder.L2R

    def test_bfs_entries_use_dbfs(self, small_digraph):
        conv = convert(KernelType.BFS, small_digraph.T.tocsr(), omega=8)
        assert all(e.dp is DataPathType.D_BFS for e in conv.table)


class TestSymGSConversion:
    def test_majority_gemv_minority_dsymgs(self, spd_medium):
        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        assert conv.n_parallel > conv.n_dependent
        assert conv.n_dependent >= 1

    def test_one_dsymgs_per_nonempty_block_row(self, spd_medium):
        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        dsymgs_rows = [e.block_row for e in conv.table
                       if e.dp is DataPathType.D_SYMGS]
        assert len(dsymgs_rows) == len(set(dsymgs_rows))

    def test_reordered_gemvs_precede_dsymgs_within_row(self, spd_medium):
        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        seen_diag_for_row = set()
        for e in conv.table:
            if e.dp is DataPathType.D_SYMGS:
                seen_diag_for_row.add(e.block_row)
            else:
                assert e.block_row not in seen_diag_for_row

    def test_gemv_partials_bypass_cache(self, spd_medium):
        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        for e in conv.table:
            if e.dp is DataPathType.GEMV:
                assert e.inx_out == NO_CACHE_WRITE

    def test_operand_ports_follow_triangle(self, spd_medium):
        """Lower-triangle blocks read x^t (port 1), upper read x^{t-1}."""
        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        for e in conv.table:
            if e.dp is DataPathType.GEMV:
                if e.block_col < e.block_row:
                    assert e.op is OperandPort.PORT1
                else:
                    assert e.op is OperandPort.PORT2

    def test_dsymgs_access_order_r2l(self, spd_medium):
        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        for e in conv.table:
            if e.dp is DataPathType.D_SYMGS:
                assert e.order is AccessOrder.R2L

    def test_reordering_moves_diagonal_last(self, spd_medium):
        """Reordered tables end every block row with its D-SymGS; the
        natural (ablation) order leaves it interleaved mid-row."""
        reordered = convert(KernelType.SYMGS, spd_medium, omega=8,
                            reorder=True)
        natural = convert(KernelType.SYMGS, spd_medium, omega=8,
                          reorder=False)
        assert len(reordered.table) == len(natural.table)
        assert reordered.reordered and not natural.reordered

        def diag_is_last_everywhere(conv):
            last_in_row = {}
            for e in conv.table:
                last_in_row[e.block_row] = e
            return all(
                last_in_row[e.block_row] is e
                for e in conv.table if e.dp is DataPathType.D_SYMGS
            )

        assert diag_is_last_everywhere(reordered)
        assert not diag_is_last_everywhere(natural)

    def test_requires_square(self):
        with pytest.raises(ConfigError):
            convert(KernelType.SYMGS, np.ones((4, 8)), omega=4)


class TestConversionResult:
    def test_preprocess_cost_linear_in_nnz(self, spd_small, spd_medium):
        small = convert(KernelType.SPMV, spd_small, omega=8)
        large = convert(KernelType.SPMV, spd_medium, omega=8)
        assert small.preprocess_cycles() < large.preprocess_cycles()
        assert small.preprocess_cycles() == pytest.approx(
            4.0 * small.bcsr.nnz)

    def test_accepts_prebuilt_bcsr(self, spd_small):
        bcsr = BCSRMatrix.from_dense(spd_small, 8)
        conv = convert(KernelType.SPMV, bcsr, omega=8)
        assert conv.bcsr is bcsr

    def test_omega_mismatch_with_bcsr(self, spd_small):
        bcsr = BCSRMatrix.from_dense(spd_small, 4)
        with pytest.raises(ConfigError):
            convert(KernelType.SPMV, bcsr, omega=8)

    def test_unknown_kernel_rejected(self, spd_small):
        with pytest.raises(ConfigError):
            convert("spmv", spd_small, omega=8)

    def test_accepts_scipy(self, small_digraph):
        conv = convert(KernelType.SPMV, small_digraph, omega=4)
        np.testing.assert_allclose(conv.bcsr.to_dense(),
                                   small_digraph.toarray())

    def test_stream_matches_table_when_reordered(self, spd_medium):
        """The storage format's stream order equals the table order."""
        conv = convert(KernelType.SYMGS, spd_medium, omega=8, reorder=True)
        stream_keys = [(b.block_row, b.block_col)
                       for b in conv.matrix.stream()]
        table_keys = [(e.block_row, e.block_col) for e in conv.table]
        assert stream_keys == table_keys
