"""Regenerate the chaos-free PoolReport fingerprint corpus.

Run from the repo root::

    PYTHONPATH=src python tests/data/regen_report_fingerprints.py

Writes ``tests/data/poolreport_fingerprints.json``: one canonical
PoolReport dict per (seed, devices, fault_rate) combination, captured
with chaos disabled and hedging off.  The corpus pins the guarantee
that the device-lifecycle chaos layer is inert when not configured —
a chaos-free serve run must stay field-identical to the scheduler
that predates the chaos engine.

Only fields present at capture time are stored, so counters added by
later PRs (with zero defaults) do not invalidate the corpus.
"""

import json
import pathlib
from dataclasses import asdict

from repro.runtime import serve

CASES = [
    {"seed": seed, "n_devices": devices, "fault_rate": rate}
    for seed in range(15)
    for devices in (1, 2, 4)
    for rate in (0.0, 0.2)
]


def fingerprint(case):
    _, report = serve(n_requests=20, scale=0.04, execution="model",
                      **case)
    return {"case": case, "report": asdict(report)}


def main():
    out = pathlib.Path(__file__).with_name(
        "poolreport_fingerprints.json")
    corpus = [fingerprint(case) for case in CASES]
    out.write_text(json.dumps(corpus, sort_keys=True, indent=0)
                   + "\n")
    print(f"wrote {out} ({len(corpus)} cases)")


if __name__ == "__main__":
    main()
