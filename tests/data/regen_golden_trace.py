"""Regenerate the golden trace snapshot.

The snapshot pins the exported Chrome-trace bytes of one fixed, fully
deterministic run: a SymGS sweep of ``stencil27`` at scale 0.05 with
seed 0 on the default configuration.  Any intentional change to span
layout, export format or the cost model shows up as a diff here.

To refresh after an intentional change::

    PYTHONPATH=src python tests/data/regen_golden_trace.py

and commit the updated ``golden_trace.json`` together with the change
that caused it.
"""

from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "golden_trace.json"


def build_golden_tracer():
    """The exact recipe the snapshot pins (also imported by the test)."""
    import numpy as np

    from repro.core import Alrescha, AlreschaConfig, KernelType
    from repro.datasets import load_dataset
    from repro.observe import Tracer

    tracer = Tracer()
    matrix = load_dataset("stencil27", scale=0.05).matrix
    acc = Alrescha.from_matrix(KernelType.SYMGS, matrix,
                               config=AlreschaConfig(tracer=tracer))
    rhs = np.random.default_rng(0).normal(size=matrix.shape[0])
    acc.run_symgs_sweep(rhs, np.zeros(rhs.size))
    return tracer


def main() -> None:
    from repro.observe import write_chrome_trace

    nbytes = write_chrome_trace(build_golden_tracer(), GOLDEN_PATH)
    print(f"wrote {GOLDEN_PATH} ({nbytes} bytes)")


if __name__ == "__main__":
    main()
