"""Regenerate the report-schema golden snapshot.

Run from the repo root::

    PYTHONPATH=src python tests/data/regen_report_schema.py

Writes ``tests/data/report_schema_golden.json``:

* the canonical-JSON key order of :class:`PoolReport`,
  :class:`DeviceStats`, :class:`FleetReport` and :class:`PoolStats`
  (sorted dataclass field names — exactly what ``report_json`` /
  ``fleet_report_json`` emit), and
* one full model-execution :class:`FleetReport` snapshot.

Schema drift — a field added, removed or renamed — fails the golden
test the same way trace-schema drift fails ``test_trace_schema``.
Regenerating this file is the explicit act of *declaring* a schema
change; do it only alongside a version note in API.md.
"""

import json
import pathlib
from dataclasses import asdict

from repro.runtime import serve, serve_fleet
from repro.runtime.fleet import FleetConfig

SNAPSHOT_CASE = {"n_requests": 12, "n_devices": 2, "seed": 9,
                 "scale": 0.04}


def main():
    _, pool_report = serve(execution="model", **SNAPSHOT_CASE)
    _, fleet_report = serve_fleet(
        execution="model", fleet_config=FleetConfig(n_pools=2),
        **SNAPSHOT_CASE)

    pool = asdict(pool_report)
    fleet = asdict(fleet_report)
    payload = {
        "poolreport_keys": sorted(pool),
        "devicestats_keys": sorted(pool["devices"][0]),
        "fleetreport_keys": sorted(fleet),
        "poolstats_keys": sorted(fleet["pool_stats"][0]),
        "snapshot_case": SNAPSHOT_CASE,
        "fleet_snapshot": fleet,
    }
    out = pathlib.Path(__file__).with_name("report_schema_golden.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
