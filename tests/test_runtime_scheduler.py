"""Scheduler policies: admission, deadlines, retries, degradation."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.errors import ConfigError, RejectedError
from repro.kernels.spmv import to_csr
from repro.runtime import (
    DevicePool,
    Job,
    JobStatus,
    Scheduler,
    SchedulerConfig,
    serve,
    value_crc,
)
from repro.sim.faults import FaultModel

SCALE = 0.05


def job(job_id, arrival=0.0, deadline=50_000.0, priority=0,
        kernel="spmv", dataset="stencil27"):
    return Job(job_id=job_id, kernel=kernel, dataset=dataset,
               scale=SCALE, arrival_cycle=arrival,
               deadline_cycles=deadline, priority=priority,
               seed=1000 + job_id)


def run(jobs, n_devices=2, fault_rate=0.0, seed=0, **sched_kwargs):
    pool = DevicePool(n_devices, fault_rate=fault_rate, seed=seed)
    scheduler = Scheduler(pool, SchedulerConfig(**sched_kwargs))
    return scheduler.run(jobs)


class TestAdmission:
    def test_zero_deadline_rejected_not_executed(self):
        results, report = run([job(0, deadline=0.0), job(1)])
        assert results[0].status is JobStatus.REJECTED
        assert results[0].attempts == 0
        assert "deadline" in results[0].error
        assert results[1].status is JobStatus.OK
        assert report.rejected == 1

    def test_queue_full_rejects_instead_of_blocking(self):
        # 8 simultaneous arrivals into a queue of 3 over 1 device: the
        # overflow is rejected immediately, never queued.
        jobs = [job(i, arrival=0.0) for i in range(8)]
        results, report = run(jobs, n_devices=1, queue_depth=3,
                              high_priority_reserve=0)
        rejected = [r for r in results if r.status is JobStatus.REJECTED]
        assert len(rejected) == 5
        assert all("queue full" in r.error for r in rejected)
        assert report.admitted == 3

    def test_high_priority_reserve(self):
        # Queue saturated by normal jobs; a priority-2 job still fits
        # in the reserve slot, a second priority-0 job does not.
        jobs = [job(i, arrival=0.0) for i in range(3)]
        jobs.append(job(3, arrival=0.0, priority=2))
        jobs.append(job(4, arrival=0.0, priority=0))
        results, _ = run(jobs, n_devices=1, queue_depth=3,
                         high_priority_reserve=1)
        assert results[3].status is not JobStatus.REJECTED
        assert results[4].status is JobStatus.REJECTED

    def test_admit_raises_rejected_error(self):
        pool = DevicePool(1)
        sched = Scheduler(pool, SchedulerConfig(queue_depth=2))
        with pytest.raises(RejectedError, match="queue full"):
            sched.admit(job(0), queue_length=2)
        with pytest.raises(RejectedError, match="deadline"):
            sched.admit(job(1, deadline=0.0), queue_length=0)


class TestDeadlines:
    def test_queued_job_times_out_at_deadline(self):
        # Two jobs, one device: the second waits behind the first and
        # its 1-cycle deadline expires in the queue.
        results, report = run([job(0), job(1, deadline=1.0)], n_devices=1)
        assert results[0].status is JobStatus.OK
        assert results[1].status is JobStatus.TIMEOUT
        assert results[1].value_crc == 0  # never executed
        assert "deadline" in results[1].error
        assert report.timeout == 1

    def test_late_completion_is_timeout_with_answer(self):
        # Deadline shorter than the service time: the job runs but
        # finishes late; the (correct) answer stays attached.
        results, _ = run([job(0, deadline=10.0)], n_devices=1)
        assert results[0].status is JobStatus.TIMEOUT
        assert results[0].value_crc != 0
        assert results[0].latency_cycles > 10.0

    def test_completion_exactly_at_deadline_is_ok(self):
        # Boundary: a deadline equal to the service time is met, not
        # missed — the completion check is strictly `>`.
        probe, _ = run([job(0)], n_devices=1)
        service = probe[0].latency_cycles
        results, _ = run([job(0, deadline=service)], n_devices=1)
        assert results[0].status is JobStatus.OK
        assert results[0].latency_cycles == service

    def test_queued_job_at_exact_deadline_still_dispatches(self):
        # Regression: the queued-expiry check used `now >= deadline_at`
        # while the completion check used `latency > deadline`, so a
        # job becoming dispatchable exactly at its deadline was shed
        # unexecuted (no answer, zero attempts).  With both on strict
        # `>`, it dispatches at that cycle and finishes late *with* its
        # answer attached.
        probe, _ = run([job(0)], n_devices=1)
        service = probe[0].latency_cycles
        # Job 1 waits behind job 0 and its deadline lands exactly on
        # the cycle the device frees up.
        results, _ = run([job(0), job(1, deadline=service)], n_devices=1)
        assert results[1].status is JobStatus.TIMEOUT
        assert results[1].attempts == 1
        assert results[1].value_crc != 0
        assert results[1].finish_cycle == 2 * service

    def test_priority_order_under_contention(self):
        # Same arrival cycle, one device: the priority-2 job must be
        # placed first even though it was submitted last.
        jobs = [job(0), job(1), job(2, priority=2)]
        results, _ = run(jobs, n_devices=1)
        finish = {r.job_id: r.finish_cycle for r in results}
        assert finish[2] < finish[0] < finish[1]


class TestRetryAndDegradation:
    def test_retry_on_another_device(self):
        # Device 0 is persistently sick; device 1 is clean.  Every job
        # first placed on device 0 fails there and must succeed on
        # device 1 within its retry budget.
        pool = DevicePool(2, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        scheduler = Scheduler(pool, SchedulerConfig())
        jobs = [job(i, arrival=i * 3000.0) for i in range(6)]
        results, report = scheduler.run(jobs)
        assert all(r.status in (JobStatus.OK, JobStatus.DEGRADED)
                   for r in results)
        retried = [r for r in results if r.attempts > 1]
        assert retried, "device 0 failures must trigger retries"
        assert all(r.device_id == 1 for r in retried
                   if r.status is JobStatus.OK)
        assert pool.devices[0].health.failures > 0
        assert report.retries > 0

    def test_sick_device_breaker_opens(self):
        pool = DevicePool(2, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        scheduler = Scheduler(pool, SchedulerConfig())
        jobs = [job(i, arrival=i * 3000.0) for i in range(12)]
        _, report = scheduler.run(jobs)
        assert pool.devices[0].breaker.trips >= 1
        assert report.breaker_trips >= 1

    def test_all_devices_sick_degrades_never_fails(self):
        # rate=1.0 everywhere: every accelerator attempt dies, so every
        # admitted job must come back DEGRADED — explicitly marked,
        # numerically correct — and none may FAIL.
        jobs = [job(i, arrival=i * 8000.0, deadline=200_000.0)
                for i in range(5)]
        results, report = run(jobs, n_devices=2, fault_rate=1.0, seed=3)
        assert report.failed == 0
        degraded = [r for r in results if r.status is JobStatus.DEGRADED]
        assert degraded, "sick pool must shed to the reference path"
        ds = load_dataset("stencil27", scale=SCALE)
        csr = to_csr(ds.matrix)
        for r in degraded:
            j = jobs[r.job_id]
            x = np.random.default_rng(j.seed).normal(size=ds.n)
            assert r.value_crc == value_crc(csr.spmv(x))

    def test_unknown_dataset_fails_loudly(self):
        results, report = run([job(0, dataset="no-such-matrix")])
        assert results[0].status is JobStatus.FAILED
        assert "no-such-matrix" in results[0].error
        assert report.failed == 1

    def test_failed_probe_dispatch_releases_the_probe_slot(self):
        # Regression: a dispatch that dies on ReproError (unserviceable
        # job) after claiming the half-open probe slot used to leave
        # the probe in flight forever, bricking the device.  Brick a
        # one-device pool, cure the hardware, then land an
        # unserviceable job exactly when the breaker becomes probeable:
        # the next good job must still be able to probe and recover.
        pool = DevicePool(1, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        sick = [job(i, arrival=i * 3000.0, deadline=200_000.0)
                for i in range(5)]
        results, _ = Scheduler(pool, SchedulerConfig()).run(sick)
        breaker = pool.devices[0].breaker
        assert breaker.state == "open"
        assert all(r.status is JobStatus.DEGRADED for r in results)
        # The fault stream dries up while the breaker cools down.
        pool.devices[0].fault_model.rate = 0.0
        reopen = breaker.reopen_at
        bad = job(10, arrival=reopen, dataset="no-such-matrix",
                  deadline=200_000.0)
        good = job(11, arrival=reopen + 100.0, deadline=200_000.0)
        results, report = Scheduler(pool, SchedulerConfig()).run(
            [bad, good])
        assert results[0].status is JobStatus.FAILED
        # Without release_probe the good job finds the probe slot
        # occupied forever and is shed to the reference path.
        assert results[1].status is JobStatus.OK
        assert results[1].device_id == 0
        assert breaker.state == "closed"
        assert report.degraded == 0


class TestKernels:
    @pytest.mark.parametrize("kernel", ["symgs", "pcg"])
    def test_other_kernels_serve_ok(self, kernel):
        results, report = run(
            [job(0, kernel=kernel, deadline=1e9)], n_devices=1)
        assert results[0].status is JobStatus.OK
        assert results[0].value_crc != 0


class TestBatchCoalescing:
    def test_fused_batch_matches_unbatched_answers(self):
        jobs = [job(i, arrival=0.0, deadline=500_000.0) for i in range(4)]
        solo_results, solo_report = run(jobs, n_devices=1)
        results, report = run(jobs, n_devices=1, max_batch=4)
        assert report.batches == 1
        assert report.batched_jobs == 4
        assert report.stream_bytes_saved > 0.0
        for r, s in zip(results, solo_results):
            assert r.status is JobStatus.OK
            assert r.batch_size == 4
            assert r.device_id == 0
            # Bit-identical answer per job, batched or not.
            assert r.value_crc == s.value_crc
        # One payload stream for four jobs finishes earlier than four.
        assert report.makespan_cycles < solo_report.makespan_cycles

    def test_max_batch_one_is_identical_to_default(self):
        jobs = [job(i, arrival=0.0, deadline=500_000.0) for i in range(6)]
        res_off, rep_off = run(jobs, n_devices=2)
        res_one, rep_one = run(jobs, n_devices=2, max_batch=1)
        assert res_off == res_one
        assert rep_off == rep_one
        assert rep_one.batches == 0
        assert rep_one.stream_bytes_saved == 0.0

    def test_only_identical_workloads_fuse(self):
        jobs = [job(i, deadline=500_000.0,
                    kernel="spmv" if i % 2 == 0 else "symgs")
                for i in range(4)]
        results, report = run(jobs, n_devices=1, max_batch=4)
        assert report.batches == 2
        assert report.batched_jobs == 4
        assert all(r.status is JobStatus.OK and r.batch_size == 2
                   for r in results)

    def test_pcg_never_batches(self):
        jobs = [job(i, arrival=0.0, deadline=1e9, kernel="pcg")
                for i in range(3)]
        results, report = run(jobs, n_devices=1, max_batch=4)
        assert report.batches == 0
        assert all(r.status is JobStatus.OK and r.batch_size == 1
                   for r in results)

    def test_batch_fault_fails_and_retries_whole_batch(self):
        # Device 0 is persistently sick: the fused attempt shares one
        # payload stream, so the fault fails every member at once — one
        # breaker outcome — and the whole batch re-fuses on device 1.
        pool = DevicePool(2, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        scheduler = Scheduler(pool, SchedulerConfig(max_batch=4))
        jobs = [job(i, arrival=0.0, deadline=500_000.0) for i in range(4)]
        results, report = scheduler.run(jobs)
        for r in results:
            assert r.status is JobStatus.OK
            assert r.device_id == 1
            assert r.attempts == 2
            assert r.batch_size == 4
        # Only answering batches count, and the fused failure fed the
        # sick device's health exactly once.
        assert report.batches == 1
        assert pool.devices[0].health.failures == 1

    def test_deadline_tight_candidate_stays_out(self):
        # A mate whose deadline cannot absorb the (longer) fused
        # service time is left solo rather than pushed past it.
        pool = DevicePool(1, fault_rate=0.0, seed=0)
        solo = pool.nominal_cycles(job(0))
        fused = pool.nominal_batch_cycles(job(0), 2)
        assert fused > solo  # k operands cost more than one
        tight = (solo + fused) / 2.0
        jobs = [job(0, arrival=0.0, deadline=500_000.0),
                job(1, arrival=0.0, deadline=tight)]
        scheduler = Scheduler(pool, SchedulerConfig(max_batch=4))
        results, report = scheduler.run(jobs)
        assert report.batches == 0
        assert all(r.batch_size == 1 for r in results)

    def test_batch_amortizes_stream_bytes(self):
        # The reported saving matches k solo payload streams collapsed
        # into one batched stream.
        pool = DevicePool(1, fault_rate=0.0, seed=0)
        scheduler = Scheduler(pool, SchedulerConfig(max_batch=4))
        jobs = [job(i, arrival=0.0, deadline=500_000.0) for i in range(4)]
        _, report = scheduler.run(jobs)
        probe = DevicePool(1, fault_rate=0.0, seed=0)
        solo_bytes = probe.nominal_dram_bytes(jobs[0])
        # Far more than half of 3 extra solo streams is avoided (the
        # batch only re-reads the small per-RHS vectors).
        assert report.stream_bytes_saved > 1.5 * solo_bytes


class TestServeEntryPoint:
    def test_acceptance_sweep(self):
        # The ISSUE's acceptance scenario at moderate rate: clean
        # finish, deterministic across two fresh runs.
        res_a, rep_a = serve(n_requests=60, n_devices=4,
                             fault_rate=0.05, seed=7)
        res_b, rep_b = serve(n_requests=60, n_devices=4,
                             fault_rate=0.05, seed=7)
        assert rep_a == rep_b
        assert res_a == res_b
        assert rep_a.failed == 0

    def test_high_fault_rate_trips_breakers_and_degrades(self):
        results, report = serve(n_requests=200, n_devices=4,
                                fault_rate=0.3, seed=7)
        assert report.breaker_trips >= 1
        assert report.degraded >= 1
        assert report.failed == 0
        # Zero-deadline arrivals exist in this trace and were rejected
        # at admission, not executed.
        rejected = [r for r in results
                    if r.status is JobStatus.REJECTED and "deadline"
                    in r.error]
        assert rejected
        assert all(r.attempts == 0 for r in rejected)


class TestDeadlineAccountingRegressions:
    """Fail-before/pass-after pins on the event-engine bug fixes."""

    def test_requeued_job_finalized_at_deadline_cycle(self):
        # Fault-then-wait: the job faults on device 0 and is requeued
        # with ready = finish, but its deadline expires *before* the
        # retry becomes ready.  The scan-based engine only revisited it
        # when ready arrived, stamping finish_cycle/latency past the
        # deadline; the deadline-expiry event finalises it at the
        # deadline cycle itself.
        pool = DevicePool(2, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        nominal = pool.nominal_cycles(job(0))
        deadline = nominal + 100.0  # expires inside the wasted attempt
        results, report = Scheduler(pool, SchedulerConfig()).run(
            [job(0, arrival=0.0, deadline=deadline)])
        r = results[0]
        assert r.status is JobStatus.TIMEOUT
        assert r.attempts == 1  # the faulted attempt was consumed
        assert r.value_crc == 0  # no answer was ever produced
        assert r.finish_cycle == deadline  # not the retry-ready cycle
        assert r.latency_cycles == deadline
        assert report.makespan_cycles == deadline

    def test_requeued_job_with_slack_still_retries(self):
        # Control for the fix: a requeued job whose deadline has slack
        # past the retry-ready cycle must still be retried, not expired.
        pool = DevicePool(2, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        results, _ = Scheduler(pool, SchedulerConfig()).run(
            [job(0, arrival=0.0, deadline=200_000.0)])
        assert results[0].status is JobStatus.OK
        assert results[0].attempts == 2
        assert results[0].device_id == 1

    def _degraded_latency(self):
        """Latency of a degraded one-device run with ample deadline."""
        pool = DevicePool(1, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        results, _ = Scheduler(pool, SchedulerConfig()).run(
            [job(0, deadline=10_000_000.0)])
        assert results[0].status is JobStatus.DEGRADED
        return results[0].latency_cycles, results[0].value_crc

    def test_degraded_past_deadline_is_timeout_with_answer(self):
        # The degraded path used to be exempt from deadline accounting:
        # a reference answer landing past the deadline reported
        # DEGRADED.  It is TIMEOUT like every other late completion —
        # with the (correct) reference answer still attached.
        lat, crc = self._degraded_latency()
        pool = DevicePool(1, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        results, report = Scheduler(pool, SchedulerConfig()).run(
            [job(0, deadline=lat - 1.0)])
        r = results[0]
        assert r.status is JobStatus.TIMEOUT
        assert r.value_crc == crc  # late answer kept
        assert r.latency_cycles == lat
        assert "past deadline" in r.error
        assert report.timeout == 1 and report.degraded == 0

    def test_degraded_exactly_at_deadline_is_degraded(self):
        # Boundary control: the strict-`>` rule every completion path
        # shares — finishing exactly at the deadline met it.
        lat, crc = self._degraded_latency()
        pool = DevicePool(1, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        results, report = Scheduler(pool, SchedulerConfig()).run(
            [job(0, deadline=lat)])
        assert results[0].status is JobStatus.DEGRADED
        assert results[0].value_crc == crc
        assert report.degraded == 1 and report.timeout == 0


class TestDuplicateJobIds:
    def test_duplicate_ids_raise_config_error(self):
        # Results are keyed by job_id: duplicates used to silently
        # overwrite one result and double-report the other.
        from repro.errors import ConfigError
        pool = DevicePool(1)
        jobs = [job(0), job(1), job(1, arrival=50.0)]
        with pytest.raises(ConfigError, match=r"duplicate job_id 1"):
            Scheduler(pool, SchedulerConfig()).run(jobs)

    def test_unique_ids_unaffected(self):
        results, _ = run([job(0), job(1)], n_devices=1)
        assert [r.job_id for r in results] == [0, 1]


class TestEventEngine:
    def test_event_counters_populate_report(self):
        results, report = run([job(i, arrival=i * 2000.0)
                               for i in range(5)], n_devices=2)
        # At least one arrival per job plus a completion per dispatch.
        assert report.events_processed >= 5
        assert report.events_stale >= 0

    def test_rerun_is_field_identical_including_event_counts(self):
        jobs = [job(i, arrival=i * 1500.0) for i in range(8)]
        _, rep_a = run(jobs, n_devices=2, fault_rate=0.2, seed=9)
        _, rep_b = run(jobs, n_devices=2, fault_rate=0.2, seed=9)
        assert rep_a == rep_b

    def test_deadline_expiry_consumed_for_queued_jobs(self):
        # A queued-but-ready job is still finalised by the dispatch
        # path under the strict-`>` rule (never early, at its deadline
        # cycle), and the engine's heap drains completely.
        results, report = run([job(0), job(1, deadline=1.0)],
                              n_devices=1)
        assert results[1].status is JobStatus.TIMEOUT
        assert results[1].finish_cycle > 1.0  # next wake after expiry
        assert report.events_processed > 0


class TestSchedulerConfigValidation:
    """Numeric knobs are validated when the config is *constructed*.

    A zero ``max_batch`` used to silently disable batching and a zero
    ``queue_depth`` rejected every job; both are misconfigurations and
    die immediately with a ConfigError naming the field.
    """

    @pytest.mark.parametrize("kwargs,field", [
        (dict(queue_depth=0), "queue_depth"),
        (dict(queue_depth=-3), "queue_depth"),
        (dict(max_attempts=0), "max_attempts"),
        (dict(max_batch=0), "max_batch"),
        (dict(max_batch=-1), "max_batch"),
        (dict(high_priority_reserve=-1), "high_priority_reserve"),
        (dict(hedge_after=0.0), "hedge_after"),
        (dict(hedge_after=-1.5), "hedge_after"),
    ])
    def test_bad_knob_names_the_field(self, kwargs, field):
        with pytest.raises(ConfigError, match=field):
            SchedulerConfig(**kwargs)

    def test_boundary_values_accepted(self):
        cfg = SchedulerConfig(queue_depth=1, max_attempts=1,
                              max_batch=1, high_priority_reserve=0)
        assert cfg.queue_depth == 1
