"""Scheduler policies: admission, deadlines, retries, degradation."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.errors import RejectedError
from repro.kernels.spmv import to_csr
from repro.runtime import (
    DevicePool,
    Job,
    JobStatus,
    Scheduler,
    SchedulerConfig,
    serve,
    value_crc,
)
from repro.sim.faults import FaultModel

SCALE = 0.05


def job(job_id, arrival=0.0, deadline=50_000.0, priority=0,
        kernel="spmv", dataset="stencil27"):
    return Job(job_id=job_id, kernel=kernel, dataset=dataset,
               scale=SCALE, arrival_cycle=arrival,
               deadline_cycles=deadline, priority=priority,
               seed=1000 + job_id)


def run(jobs, n_devices=2, fault_rate=0.0, seed=0, **sched_kwargs):
    pool = DevicePool(n_devices, fault_rate=fault_rate, seed=seed)
    scheduler = Scheduler(pool, SchedulerConfig(**sched_kwargs))
    return scheduler.run(jobs)


class TestAdmission:
    def test_zero_deadline_rejected_not_executed(self):
        results, report = run([job(0, deadline=0.0), job(1)])
        assert results[0].status is JobStatus.REJECTED
        assert results[0].attempts == 0
        assert "deadline" in results[0].error
        assert results[1].status is JobStatus.OK
        assert report.rejected == 1

    def test_queue_full_rejects_instead_of_blocking(self):
        # 8 simultaneous arrivals into a queue of 3 over 1 device: the
        # overflow is rejected immediately, never queued.
        jobs = [job(i, arrival=0.0) for i in range(8)]
        results, report = run(jobs, n_devices=1, queue_depth=3,
                              high_priority_reserve=0)
        rejected = [r for r in results if r.status is JobStatus.REJECTED]
        assert len(rejected) == 5
        assert all("queue full" in r.error for r in rejected)
        assert report.admitted == 3

    def test_high_priority_reserve(self):
        # Queue saturated by normal jobs; a priority-2 job still fits
        # in the reserve slot, a second priority-0 job does not.
        jobs = [job(i, arrival=0.0) for i in range(3)]
        jobs.append(job(3, arrival=0.0, priority=2))
        jobs.append(job(4, arrival=0.0, priority=0))
        results, _ = run(jobs, n_devices=1, queue_depth=3,
                         high_priority_reserve=1)
        assert results[3].status is not JobStatus.REJECTED
        assert results[4].status is JobStatus.REJECTED

    def test_admit_raises_rejected_error(self):
        pool = DevicePool(1)
        sched = Scheduler(pool, SchedulerConfig(queue_depth=2))
        with pytest.raises(RejectedError, match="queue full"):
            sched.admit(job(0), queue_length=2)
        with pytest.raises(RejectedError, match="deadline"):
            sched.admit(job(1, deadline=0.0), queue_length=0)


class TestDeadlines:
    def test_queued_job_times_out_at_deadline(self):
        # Two jobs, one device: the second waits behind the first and
        # its 1-cycle deadline expires in the queue.
        results, report = run([job(0), job(1, deadline=1.0)], n_devices=1)
        assert results[0].status is JobStatus.OK
        assert results[1].status is JobStatus.TIMEOUT
        assert results[1].value_crc == 0  # never executed
        assert "deadline" in results[1].error
        assert report.timeout == 1

    def test_late_completion_is_timeout_with_answer(self):
        # Deadline shorter than the service time: the job runs but
        # finishes late; the (correct) answer stays attached.
        results, _ = run([job(0, deadline=10.0)], n_devices=1)
        assert results[0].status is JobStatus.TIMEOUT
        assert results[0].value_crc != 0
        assert results[0].latency_cycles > 10.0

    def test_priority_order_under_contention(self):
        # Same arrival cycle, one device: the priority-2 job must be
        # placed first even though it was submitted last.
        jobs = [job(0), job(1), job(2, priority=2)]
        results, _ = run(jobs, n_devices=1)
        finish = {r.job_id: r.finish_cycle for r in results}
        assert finish[2] < finish[0] < finish[1]


class TestRetryAndDegradation:
    def test_retry_on_another_device(self):
        # Device 0 is persistently sick; device 1 is clean.  Every job
        # first placed on device 0 fails there and must succeed on
        # device 1 within its retry budget.
        pool = DevicePool(2, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        scheduler = Scheduler(pool, SchedulerConfig())
        jobs = [job(i, arrival=i * 3000.0) for i in range(6)]
        results, report = scheduler.run(jobs)
        assert all(r.status in (JobStatus.OK, JobStatus.DEGRADED)
                   for r in results)
        retried = [r for r in results if r.attempts > 1]
        assert retried, "device 0 failures must trigger retries"
        assert all(r.device_id == 1 for r in retried
                   if r.status is JobStatus.OK)
        assert pool.devices[0].health.failures > 0
        assert report.retries > 0

    def test_sick_device_breaker_opens(self):
        pool = DevicePool(2, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        scheduler = Scheduler(pool, SchedulerConfig())
        jobs = [job(i, arrival=i * 3000.0) for i in range(12)]
        _, report = scheduler.run(jobs)
        assert pool.devices[0].breaker.trips >= 1
        assert report.breaker_trips >= 1

    def test_all_devices_sick_degrades_never_fails(self):
        # rate=1.0 everywhere: every accelerator attempt dies, so every
        # admitted job must come back DEGRADED — explicitly marked,
        # numerically correct — and none may FAIL.
        jobs = [job(i, arrival=i * 8000.0, deadline=200_000.0)
                for i in range(5)]
        results, report = run(jobs, n_devices=2, fault_rate=1.0, seed=3)
        assert report.failed == 0
        degraded = [r for r in results if r.status is JobStatus.DEGRADED]
        assert degraded, "sick pool must shed to the reference path"
        ds = load_dataset("stencil27", scale=SCALE)
        csr = to_csr(ds.matrix)
        for r in degraded:
            j = jobs[r.job_id]
            x = np.random.default_rng(j.seed).normal(size=ds.n)
            assert r.value_crc == value_crc(csr.spmv(x))

    def test_unknown_dataset_fails_loudly(self):
        results, report = run([job(0, dataset="no-such-matrix")])
        assert results[0].status is JobStatus.FAILED
        assert "no-such-matrix" in results[0].error
        assert report.failed == 1


class TestKernels:
    @pytest.mark.parametrize("kernel", ["symgs", "pcg"])
    def test_other_kernels_serve_ok(self, kernel):
        results, report = run(
            [job(0, kernel=kernel, deadline=1e9)], n_devices=1)
        assert results[0].status is JobStatus.OK
        assert results[0].value_crc != 0


class TestServeEntryPoint:
    def test_acceptance_sweep(self):
        # The ISSUE's acceptance scenario at moderate rate: clean
        # finish, deterministic across two fresh runs.
        res_a, rep_a = serve(n_requests=60, n_devices=4,
                             fault_rate=0.05, seed=7)
        res_b, rep_b = serve(n_requests=60, n_devices=4,
                             fault_rate=0.05, seed=7)
        assert rep_a == rep_b
        assert res_a == res_b
        assert rep_a.failed == 0

    def test_high_fault_rate_trips_breakers_and_degrades(self):
        results, report = serve(n_requests=200, n_devices=4,
                                fault_rate=0.3, seed=7)
        assert report.breaker_trips >= 1
        assert report.degraded >= 1
        assert report.failed == 0
        # Zero-deadline arrivals exist in this trace and were rejected
        # at admission, not executed.
        rejected = [r for r in results
                    if r.status is JobStatus.REJECTED and "deadline"
                    in r.error]
        assert rejected
        assert all(r.attempts == 0 for r in rejected)
