"""Trace-driven invariant tests for the tracing/profiling layer.

The tracer turns the paper's *temporal* claims into checkable
structure: reconfiguration hides under the reduction-tree drain
(§4.4/Fig. 10), every block-row's GEMV windows retire before its
D-SymGS window starts, runtime devices serve one job at a time, and
every attributed cycle reconciles with the :class:`SimReport` the run
produced.  The suite asserts each invariant both ways where an ablation
exists, plus the null-tracer guarantee: ``tracer=None`` is bit-identical
to a traced run.
"""

import numpy as np
import pytest

from repro.core import Alrescha, AlreschaConfig, KernelType
from repro.datasets import load_dataset
from repro.errors import CorruptionError, SimulationError
from repro.observe import (
    Span,
    Tracer,
    attribution_rows,
    attribution_table,
    check_device_exclusive,
    check_hedge_cancellation,
    check_no_service_after_timeout,
    check_no_service_in_downtime,
    check_no_service_on_draining_device,
    check_proper_nesting,
    check_reconfig_hidden,
    check_row_ordering,
    check_trace,
    phase_cycle_totals,
)
from repro.observe.export import EXCLUSIVE_CATS
from repro.runtime import serve
from repro.sim import CounterSet
from repro.sim.faults import FaultModel
from repro.solvers import AcceleratorBackend, ReferenceBackend, pcg
from repro.solvers.cg import cg


SCALE = 0.05


@pytest.fixture(scope="module")
def matrix():
    return load_dataset("stencil27", scale=SCALE).matrix


@pytest.fixture(scope="module")
def rhs(matrix):
    return np.random.default_rng(0).normal(size=matrix.shape[0])


def _traced_symgs(matrix, rhs, **config_kwargs):
    tracer = Tracer()
    acc = Alrescha.from_matrix(
        KernelType.SYMGS, matrix,
        config=AlreschaConfig(tracer=tracer, **config_kwargs))
    x, report = acc.run_symgs_sweep(rhs, np.zeros(rhs.size))
    return tracer, x, report


# ---------------------------------------------------------------------------
# Null-tracer bit-identity (the acceptance-criterion guarantee)
# ---------------------------------------------------------------------------
class TestNullTracerBitIdentity:
    @pytest.mark.parametrize("use_plan", [False, True])
    def test_symgs_outputs_and_report_identical(self, matrix, rhs,
                                                use_plan):
        base_acc = Alrescha.from_matrix(
            KernelType.SYMGS, matrix,
            config=AlreschaConfig(use_plan=use_plan))
        x0, rep0 = base_acc.run_symgs_sweep(rhs, np.zeros(rhs.size))
        tracer, x1, rep1 = _traced_symgs(matrix, rhs, use_plan=use_plan)
        assert x0.tobytes() == x1.tobytes()
        assert rep0.cycles == rep1.cycles
        assert rep0.counters.as_dict() == rep1.counters.as_dict()
        assert len(tracer) > 0

    def test_spmv_outputs_and_report_identical(self, matrix, rhs):
        acc0 = Alrescha.from_matrix(KernelType.SPMV, matrix)
        y0, rep0 = acc0.run_spmv(rhs)
        tracer = Tracer()
        acc1 = Alrescha.from_matrix(
            KernelType.SPMV, matrix,
            config=AlreschaConfig(tracer=tracer))
        y1, rep1 = acc1.run_spmv(rhs)
        assert y0.tobytes() == y1.tobytes()
        assert rep0.cycles == rep1.cycles
        assert len(tracer) > 0

    def test_traced_faulty_run_identical(self, matrix, rhs):
        def run(tracer):
            config = AlreschaConfig(
                fault_model=FaultModel(rate=0.05, seed=7),
                use_plan=False, tracer=tracer)
            acc = Alrescha.from_matrix(KernelType.SYMGS, matrix,
                                       config=config)
            return acc.run_symgs_sweep(rhs, np.zeros(rhs.size))

        x0, rep0 = run(None)
        x1, rep1 = run(Tracer())
        assert x0.tobytes() == x1.tobytes()
        assert rep0.cycles == rep1.cycles
        assert rep0.counters.as_dict() == rep1.counters.as_dict()

    def test_serve_results_identical(self):
        kwargs = dict(n_requests=30, n_devices=3, fault_rate=0.08,
                      seed=7, scale=0.04)
        r0, rep0 = serve(**kwargs)
        r1, rep1 = serve(tracer=Tracer(), **kwargs)
        assert [(a.job_id, a.status, a.finish_cycle, a.value_crc)
                for a in r0] == \
               [(a.job_id, a.status, a.finish_cycle, a.value_crc)
                for a in r1]


# ---------------------------------------------------------------------------
# Reconfiguration hides under the reduction-tree drain (§4.4 / Fig. 10)
# ---------------------------------------------------------------------------
class TestReconfigContainment:
    def test_every_reconfig_contained_in_a_drain(self, matrix, rhs):
        tracer, _, _ = _traced_symgs(matrix, rhs)
        reconfigs = tracer.by_cat("reconfig")
        drains = tracer.by_cat("reduce_drain")
        assert reconfigs, "SymGS must switch data paths"
        for rc in reconfigs:
            assert any(d.contains(rc) for d in drains
                       if d.track == rc.track), (
                f"reconfig [{rc.begin}, {rc.end}] escapes every drain")
        assert check_reconfig_hidden(tracer) == []

    def test_ablation_exposes_every_reconfig(self, matrix, rhs):
        tracer, _, report = _traced_symgs(
            matrix, rhs, hide_reconfig_under_drain=False)
        violations = check_reconfig_hidden(tracer)
        reconfigs = tracer.by_cat("reconfig")
        assert len(violations) == len(reconfigs) > 0
        assert report.exposed_reconfig_cycles > 0

    def test_ablation_costs_the_exposed_cycles(self, matrix, rhs):
        _, _, hidden = _traced_symgs(matrix, rhs)
        _, _, exposed = _traced_symgs(matrix, rhs,
                                      hide_reconfig_under_drain=False)
        assert exposed.cycles == pytest.approx(
            hidden.cycles + exposed.exposed_reconfig_cycles)


# ---------------------------------------------------------------------------
# GEMV-before-D-SymGS ordering per block row
# ---------------------------------------------------------------------------
class TestRowOrdering:
    def test_symgs_rows_ordered(self, matrix, rhs):
        tracer, _, _ = _traced_symgs(matrix, rhs)
        assert check_row_ordering(tracer) == []
        gemv = [s for s in tracer.spans
                if s.cat == "datapath" and s.name == "gemv"]
        dsymgs = [s for s in tracer.spans
                  if s.cat == "datapath" and s.name == "d-symgs"]
        assert gemv and dsymgs
        by_row = {}
        for s in dsymgs:
            by_row[int(s.args["row"])] = s.begin
        for s in gemv:
            row = int(s.args["row"])
            assert s.end <= by_row[row] + 1e-6

    def test_checker_flags_inverted_order(self):
        tracer = Tracer()
        pid = tracer.begin("pass:symgs", "pass", 0.0)
        tracer.add("d-symgs", "datapath", 0.0, 10.0, args={"row": 0})
        tracer.add("gemv", "datapath", 10.0, 20.0, args={"row": 0})
        tracer.end(pid, 20.0)
        violations = check_row_ordering(tracer)
        assert len(violations) == 1
        assert "row 0" in violations[0]


# ---------------------------------------------------------------------------
# Proper nesting / no partial overlap
# ---------------------------------------------------------------------------
class TestProperNesting:
    def test_engine_trace_nests(self, matrix, rhs):
        tracer, _, _ = _traced_symgs(matrix, rhs)
        assert check_proper_nesting(tracer) == []

    def test_checker_flags_partial_overlap(self):
        tracer = Tracer()
        tracer.add("a", "datapath", 0.0, 10.0)
        tracer.add("b", "datapath", 5.0, 15.0)
        violations = check_proper_nesting(tracer)
        assert len(violations) == 1
        assert "partially overlaps" in violations[0]

    def test_reference_track_may_overlap(self):
        # Degraded fallbacks are concurrent host-side lanes, exempt
        # from the single-engine nesting invariant.
        tracer = Tracer()
        tracer.add("pcg#1", "degraded", 0.0, 10.0, "reference")
        tracer.add("pcg#2", "degraded", 5.0, 15.0, "reference")
        assert check_proper_nesting(tracer) == []


# ---------------------------------------------------------------------------
# Runtime: one job at a time per device
# ---------------------------------------------------------------------------
class TestDeviceExclusive:
    def test_traced_serve_is_exclusive(self):
        tracer = Tracer()
        serve(n_requests=40, n_devices=3, fault_rate=0.08, seed=7,
              scale=0.04, tracer=tracer)
        jobs = tracer.by_cat("job")
        assert jobs, "serve must place jobs on devices"
        assert check_device_exclusive(tracer) == []
        assert check_trace(tracer) == []

    def test_device_summary_encloses_jobs(self):
        tracer = Tracer()
        serve(n_requests=25, n_devices=2, fault_rate=0.05, seed=3,
              scale=0.04, tracer=tracer)
        summaries = {s.track: s for s in tracer.by_cat("device")}
        for job in tracer.by_cat("job"):
            assert summaries[job.track].contains(job)

    def test_degraded_jobs_land_on_reference_track(self):
        # One device with a certain fault stream: attempts exhaust and
        # jobs degrade to the reference path.
        tracer = Tracer()
        results, _ = serve(n_requests=10, n_devices=1, fault_rate=0.9,
                           seed=1, scale=0.04, tracer=tracer)
        degraded = [r for r in results if r.status.value == "degraded"]
        spans = tracer.by_cat("degraded")
        assert degraded, "fault rate 0.9 on one device must degrade jobs"
        assert {s.track for s in spans} == {"reference"}
        assert len(spans) == len(degraded)

    def test_checker_flags_double_booked_device(self):
        tracer = Tracer()
        tracer.add("spmv#1", "job", 0.0, 100.0, "device0")
        tracer.add("spmv#2", "job", 50.0, 150.0, "device0")
        violations = check_device_exclusive(tracer)
        assert len(violations) == 1

    def test_same_batch_overlap_allowed(self):
        # Members of one fused multi-RHS dispatch share the device on
        # purpose; the matching ``batch`` arg marks the overlap legal.
        tracer = Tracer()
        tracer.add("spmv#1", "job", 0.0, 100.0, "device0",
                   args={"batch": 0.0})
        tracer.add("spmv#2", "job", 0.0, 100.0, "device0",
                   args={"batch": 0.0})
        assert check_device_exclusive(tracer) == []

    def test_different_batches_still_flagged(self):
        tracer = Tracer()
        tracer.add("spmv#1", "job", 0.0, 100.0, "device0",
                   args={"batch": 0.0})
        tracer.add("spmv#2", "job", 50.0, 150.0, "device0",
                   args={"batch": 1.0})
        assert len(check_device_exclusive(tracer)) == 1

    def test_batched_serve_passes_invariants(self):
        tracer = Tracer()
        _, report = serve(n_requests=30, n_devices=2, seed=3,
                          max_batch=4,
                          deadline_range=(300_000.0, 500_000.0),
                          tracer=tracer)
        assert report.batches >= 1
        assert tracer.by_cat("batch"), "fused dispatches must be traced"
        assert check_trace(tracer) == []


# ---------------------------------------------------------------------------
# Runtime: a finalised (timed-out) job never re-enters service
# ---------------------------------------------------------------------------
class TestNoServiceAfterTimeout:
    def test_checker_flags_dispatch_after_finalisation(self):
        tracer = Tracer()
        tracer.instant_event("timeout#3", "timeout", 100.0, "scheduler")
        tracer.add("spmv#3", "job", 150.0, 250.0, "device0")
        violations = check_no_service_after_timeout(tracer)
        assert len(violations) == 1
        assert "spmv#3" in violations[0]
        assert "100.00" in violations[0]

    def test_dispatch_at_finalisation_cycle_also_flagged(self):
        # The deadline-expiry event sorts after every same-cycle
        # dispatch, so a job span *beginning* at the finalisation cycle
        # means the engine dispatched a job it had already finalised.
        tracer = Tracer()
        tracer.instant_event("timeout#3", "timeout", 100.0, "scheduler")
        tracer.add("spmv#3", "job", 100.0, 250.0, "device0")
        assert len(check_no_service_after_timeout(tracer)) == 1

    def test_attempts_before_finalisation_are_legal(self):
        # Faulted attempts precede the expiry; only post-finalisation
        # service is a violation.
        tracer = Tracer()
        tracer.add("spmv#3", "job", 0.0, 90.0, "device0")
        tracer.instant_event("timeout#3", "timeout", 100.0, "scheduler")
        assert check_no_service_after_timeout(tracer) == []

    def test_other_jobs_unaffected(self):
        tracer = Tracer()
        tracer.instant_event("timeout#3", "timeout", 100.0, "scheduler")
        tracer.add("spmv#4", "job", 150.0, 250.0, "device0")
        assert check_no_service_after_timeout(tracer) == []

    def test_traced_serve_with_expiries_is_clean(self):
        # Tight deadlines on one device force queued jobs to expire
        # unexecuted; the real engine must never serve them afterwards.
        tracer = Tracer()
        results, report = serve(
            n_requests=40, n_devices=1, seed=2, scale=0.04,
            deadline_range=(400.0, 1_500.0),
            mean_interarrival_cycles=150.0, tracer=tracer)
        unexecuted = [r for r in results
                      if r.status.value == "timeout" and r.attempts == 0]
        assert unexecuted, "tight deadlines must expire queued jobs"
        instants = [s for s in tracer.spans if s.cat == "timeout"]
        assert len(instants) == len(unexecuted)
        assert check_no_service_after_timeout(tracer) == []
        assert check_trace(tracer) == []


# ---------------------------------------------------------------------------
# Span sums reconcile with the SimReport
# ---------------------------------------------------------------------------
class TestReportReconciliation:
    @pytest.mark.parametrize("kernel,runner", [
        (KernelType.SYMGS,
         lambda acc, b: acc.run_symgs_sweep(b, np.zeros(b.size))),
        (KernelType.SPMV, lambda acc, b: acc.run_spmv(b)),
    ])
    def test_pass_span_duration_equals_report_cycles(self, matrix, rhs,
                                                     kernel, runner):
        tracer = Tracer()
        acc = Alrescha.from_matrix(
            kernel, matrix, config=AlreschaConfig(tracer=tracer))
        _, report = runner(acc, rhs)
        passes = tracer.by_cat("pass", track="engine")
        assert len(passes) == 1
        assert passes[0].dur == pytest.approx(report.cycles)
        assert passes[0].args["cycles"] == report.cycles

    def test_exclusive_phases_tile_the_pass(self, matrix, rhs):
        # datapath + fills + waits partition the pass span: the engine
        # track is gap-free and every cycle is attributed exactly once.
        tracer, _, report = _traced_symgs(matrix, rhs)
        tiled = sum(s.dur for s in tracer.spans
                    if s.track == "engine" and s.cat in EXCLUSIVE_CATS)
        assert tiled == pytest.approx(report.cycles)

    def test_retry_spans_sum_to_retry_counters(self, matrix, rhs):
        config = AlreschaConfig(
            fault_model=FaultModel(rate=0.05, seed=7),
            use_plan=False, tracer=Tracer())
        acc = Alrescha.from_matrix(KernelType.SYMGS, matrix,
                                   config=config)
        _, report = acc.run_symgs_sweep(rhs, np.zeros(rhs.size))
        retries = config.tracer.by_cat("retry")
        assert retries, "seed 7 at rate 0.05 must inject recoverable faults"
        total = sum(s.dur for s in retries)
        assert total == pytest.approx(
            report.counters.get("retry_cycles")
            + report.counters.get("fault_latency_cycles"))

    def test_channel_stream_bytes_match_counters(self, matrix, rhs):
        # Per-block payload transfers land in the channel spans; the
        # remainder (cache refills, write-back) is recorded on the pass
        # span as ``extra_stream_bytes``.  Together they account every
        # DRAM byte the report counted.
        tracer, _, report = _traced_symgs(matrix, rhs)
        streamed = sum(float(s.args.get("dram_bytes", 0.0))
                       for s in tracer.spans
                       if s.track == "channel" and s.cat == "stream")
        extra = float(tracer.by_cat("pass")[0].args["extra_stream_bytes"])
        assert streamed + extra == pytest.approx(
            report.counters.get("dram_bytes"))

    def test_attribution_rows_share_sums_to_one(self, matrix, rhs):
        tracer, _, _ = _traced_symgs(matrix, rhs)
        exclusive = [r for r in attribution_rows(tracer)
                     if not r["overlapped"]]
        assert sum(r["share"] for r in exclusive) == pytest.approx(1.0)
        table = attribution_table(tracer)
        assert "engine wall" in table
        assert "datapath:gemv" in table


# ---------------------------------------------------------------------------
# Solver iteration spans
# ---------------------------------------------------------------------------
class TestSolverTracing:
    def test_pcg_span_per_iteration_clocked_by_report(self, matrix, rhs):
        tracer = Tracer()
        backend = AcceleratorBackend(
            matrix, config=AlreschaConfig(tracer=tracer))
        result = pcg(backend, rhs, max_iter=5, tracer=tracer)
        spans = tracer.by_cat("solver")
        assert len(spans) == result.iterations
        for prev, cur in zip(spans, spans[1:]):
            assert cur.begin >= prev.end - 1e-9
        assert spans[-1].end == pytest.approx(result.report.cycles)
        assert "counters" in spans[-1].args

    def test_reference_backend_falls_back_to_iteration_clock(self, matrix,
                                                             rhs):
        tracer = Tracer()
        result = cg(ReferenceBackend(matrix), rhs, max_iter=6,
                    tracer=tracer)
        spans = tracer.by_cat("solver")
        assert len(spans) == result.iterations
        assert spans[0].begin == 0.0
        assert spans[-1].end == float(result.iterations)

    def test_checkpoint_instants(self, matrix, rhs):
        tracer = Tracer()
        pcg(ReferenceBackend(matrix), rhs, max_iter=10,
            checkpoint_interval=2, tracer=tracer)
        checkpoints = tracer.by_cat("checkpoint")
        assert checkpoints
        assert all(s.instant for s in checkpoints)

    def test_restart_instants_on_rollback(self, matrix, rhs):
        class FlakyBackend(ReferenceBackend):
            def __init__(self, m):
                super().__init__(m)
                self.calls = 0

            def spmv(self, x):
                self.calls += 1
                if self.calls == 3:
                    raise CorruptionError("injected")
                return super().spmv(x)

        tracer = Tracer()
        result = pcg(FlakyBackend(matrix), rhs, max_iter=10,
                     checkpoint_interval=1, tracer=tracer)
        restarts = [s for s in tracer.spans if s.name == "solver_restart"]
        assert result.restarts >= 1
        assert len(restarts) == result.restarts
        # The failing iteration's span still closed (finally path).
        assert not tracer._open.get("solver")


# ---------------------------------------------------------------------------
# Tracer mechanics
# ---------------------------------------------------------------------------
class TestTracerMechanics:
    def test_add_rejects_backwards_span(self):
        with pytest.raises(SimulationError):
            Tracer().add("x", "datapath", 10.0, 5.0)

    def test_end_enforces_lifo(self):
        tracer = Tracer()
        outer = tracer.begin("outer", "pass", 0.0)
        tracer.begin("inner", "block_row", 1.0)
        with pytest.raises(SimulationError):
            tracer.end(outer, 10.0)

    def test_counters_delta_attached_on_end(self):
        tracer = Tracer()
        live = CounterSet({"alu_op": 5.0})
        sid = tracer.begin("w", "solver", 0.0, counters=live)
        live.add("alu_op", 3.0)
        live.add("dram_bytes", 64.0)
        span = tracer.end(sid, 4.0, counters=live)
        assert span.args["counters"] == {"alu_op": 3.0, "dram_bytes": 64.0}

    def test_extend_coalesces_and_seal_breaks(self):
        tracer = Tracer()
        tracer.extend("channel", "stream", "stream", 4.0,
                      {"dram_bytes": 64.0})
        tracer.extend("channel", "stream", "stream", 6.0,
                      {"dram_bytes": 128.0})
        assert len(tracer) == 1
        assert tracer.spans[0].dur == 10.0
        assert tracer.spans[0].args["dram_bytes"] == 192.0
        tracer.seal("channel")
        tracer.extend("channel", "stream", "stream", 1.0)
        assert len(tracer) == 2

    def test_extend_non_coalescing_retry(self):
        tracer = Tracer()
        tracer.extend("channel", "stream", "stream", 4.0)
        tracer.extend("channel", "retry:drop", "retry", 2.0,
                      coalesce=False)
        tracer.extend("channel", "stream", "stream", 4.0)
        assert [s.cat for s in tracer.spans] == ["stream", "retry",
                                                 "stream"]

    def test_stretch_lengthens_in_place(self):
        tracer = Tracer()
        sid = tracer.add("p", "pass", 0.0, 10.0)
        tracer.stretch(sid, 5.0)
        assert tracer.spans[sid].end == 15.0
        assert tracer.cursor("engine") == 15.0

    def test_replay_shifts_by_track_offset(self):
        template = [Span(0, "w", "datapath", "engine", 0.0, 4.0),
                    Span(1, "s", "stream", "channel", 0.0, 2.0)]
        tracer = Tracer()
        tracer.replay(template, {"engine": 100.0, "channel": 50.0})
        assert tracer.spans[0].begin == 100.0
        assert tracer.spans[1].begin == 50.0

    def test_phase_cycle_totals_keys(self, matrix, rhs):
        tracer, _, _ = _traced_symgs(matrix, rhs)
        totals = phase_cycle_totals(tracer)
        assert "datapath:gemv" in totals
        assert "datapath:d-symgs" in totals
        assert totals["pass"] > 0


# ---------------------------------------------------------------------------
# Runtime: no service inside a device's chaos downtime
# ---------------------------------------------------------------------------
class TestNoServiceInDowntime:
    def test_checker_flags_job_overlapping_a_crash(self):
        tracer = Tracer()
        tracer.add("crash#0.1", "crash", 100.0, 300.0, "chaos",
                   args={"device": 0.0})
        tracer.add("spmv#1", "job", 150.0, 250.0, "device0")
        violations = check_no_service_in_downtime(tracer)
        assert len(violations) == 1
        assert "spmv#1" in violations[0]
        assert "crash" in violations[0]

    def test_checker_flags_job_placed_mid_hang(self):
        tracer = Tracer()
        tracer.add("hang#0.1", "hang", 100.0, 300.0, "chaos",
                   args={"device": 0.0})
        tracer.add("spmv#1", "job", 200.0, 400.0, "device0")
        violations = check_no_service_in_downtime(tracer)
        assert len(violations) == 1
        assert "begins at" in violations[0]

    def test_job_stretching_across_a_hang_is_legal(self):
        # The slowed-not-lost case: dispatched before the stall,
        # completion postponed past it.
        tracer = Tracer()
        tracer.add("hang#0.1", "hang", 100.0, 300.0, "chaos",
                   args={"device": 0.0})
        tracer.add("spmv#1", "job", 50.0, 400.0, "device0")
        assert check_no_service_in_downtime(tracer) == []

    def test_voided_span_ending_at_the_crash_is_legal(self):
        # Work lost to a crash is spanned as ``voided``, ending at the
        # crash cycle — not a service violation.
        tracer = Tracer()
        tracer.add("crash#0.1", "crash", 100.0, 300.0, "chaos",
                   args={"device": 0.0})
        tracer.add("spmv#1", "voided", 50.0, 100.0, "device0")
        assert check_no_service_in_downtime(tracer) == []

    def test_other_devices_unaffected(self):
        tracer = Tracer()
        tracer.add("crash#0.1", "crash", 100.0, 300.0, "chaos",
                   args={"device": 0.0})
        tracer.add("spmv#1", "job", 150.0, 250.0, "device1")
        assert check_no_service_in_downtime(tracer) == []

    def test_traced_chaos_serve_is_clean(self):
        from repro.runtime import ChaosModel
        tracer = Tracer()
        chaos = ChaosModel(rate=0.2, seed=4, mean_gap_cycles=1500.0,
                           mean_crash_cycles=3000.0,
                           mean_hang_cycles=1500.0)
        _, report = serve(n_requests=60, n_devices=3, fault_rate=0.1,
                          seed=4, scale=0.04, execution="model",
                          chaos=chaos, tracer=tracer)
        assert report.crashes + report.hangs > 0
        assert tracer.by_cat("crash") or tracer.by_cat("hang")
        assert check_no_service_in_downtime(tracer) == []
        assert check_trace(tracer) == []


# ---------------------------------------------------------------------------
# Runtime: a cancelled hedge attempt lost to a real winner
# ---------------------------------------------------------------------------
class TestHedgeCancellation:
    def test_checker_flags_cancellation_without_winner(self):
        tracer = Tracer()
        tracer.add("spmv#3", "hedge_cancelled", 0.0, 100.0, "device0")
        violations = check_hedge_cancellation(tracer)
        assert len(violations) == 1
        assert "spmv#3" in violations[0]

    def test_checker_flags_winner_on_same_track(self):
        # "Winning" on the device whose attempt was cancelled means
        # the scheduler cancelled the attempt that answered.
        tracer = Tracer()
        tracer.add("spmv#3", "hedge_cancelled", 0.0, 100.0, "device0")
        tracer.add("spmv#3", "job", 20.0, 100.0, "device0",
                   args={"ok": True})
        assert len(check_hedge_cancellation(tracer)) == 1

    def test_checker_flags_winner_ending_elsewhere_in_time(self):
        tracer = Tracer()
        tracer.add("spmv#3", "hedge_cancelled", 0.0, 100.0, "device0")
        tracer.add("spmv#3", "job", 20.0, 180.0, "device1",
                   args={"ok": True})
        assert len(check_hedge_cancellation(tracer)) == 1

    def test_coincident_winner_on_other_track_is_legal(self):
        tracer = Tracer()
        tracer.add("spmv#3", "hedge_cancelled", 0.0, 100.0, "device0")
        tracer.add("spmv#3", "job", 20.0, 100.0, "device1",
                   args={"ok": True})
        assert check_hedge_cancellation(tracer) == []

    def test_traced_hedged_serve_is_clean(self):
        from repro.runtime import ChaosModel
        tracer = Tracer()
        chaos = ChaosModel(rate=0.3, seed=2, mean_gap_cycles=1500.0,
                           mean_crash_cycles=3000.0,
                           mean_hang_cycles=1500.0)
        _, report = serve(n_requests=60, n_devices=3, fault_rate=0.1,
                          seed=2, scale=0.04, execution="model",
                          chaos=chaos, hedge_after=1.2, tracer=tracer)
        assert check_hedge_cancellation(tracer) == []
        assert check_trace(tracer) == []


# ---------------------------------------------------------------------------
# Runtime: no new placement on a device once its autoscale drain begins
# ---------------------------------------------------------------------------
class TestNoServiceOnDrainingDevice:
    def test_checker_flags_job_starting_inside_the_drain(self):
        tracer = Tracer()
        tracer.add("drain#1", "drain", 100.0, 300.0, "autoscale",
                   args={"device": 1.0})
        tracer.add("spmv#7", "job", 150.0, 250.0, "device1")
        violations = check_no_service_on_draining_device(tracer)
        assert len(violations) == 1
        assert "spmv#7" in violations[0]
        assert "drain" in violations[0]

    def test_checker_flags_job_starting_after_retirement(self):
        # Retired devices never serve again — a job *after* the drain
        # window is just as illegal as one inside it.
        tracer = Tracer()
        tracer.add("drain#1", "drain", 100.0, 300.0, "autoscale",
                   args={"device": 1.0})
        tracer.add("spmv#7", "job", 400.0, 500.0, "device1")
        assert len(check_no_service_on_draining_device(tracer)) == 1

    def test_in_flight_work_finishing_during_drain_is_legal(self):
        # Drain-before-remove: the job dispatched *before* the drain
        # began may run to completion inside the window.
        tracer = Tracer()
        tracer.add("drain#1", "drain", 100.0, 300.0, "autoscale",
                   args={"device": 1.0})
        tracer.add("spmv#7", "job", 50.0, 280.0, "device1")
        assert check_no_service_on_draining_device(tracer) == []

    def test_other_devices_unaffected(self):
        tracer = Tracer()
        tracer.add("drain#1", "drain", 100.0, 300.0, "autoscale",
                   args={"device": 1.0})
        tracer.add("spmv#7", "job", 150.0, 250.0, "device0")
        assert check_no_service_on_draining_device(tracer) == []

    def test_fleet_prefixes_scope_the_drain_to_its_pool(self):
        # p0's drain must not constrain p1's device of the same id.
        tracer = Tracer()
        tracer.add("drain#0", "drain", 100.0, 300.0, "p0.autoscale",
                   args={"device": 0.0})
        tracer.add("spmv#7", "job", 150.0, 250.0, "p1.device0")
        assert check_no_service_on_draining_device(tracer) == []
        tracer.add("spmv#8", "job", 150.0, 250.0, "p0.device0")
        assert len(check_no_service_on_draining_device(tracer)) == 1

    def test_traced_autoscaled_serve_is_clean(self):
        from repro.runtime import AutoscaleConfig
        tracer = Tracer()
        cfg = AutoscaleConfig(min_devices=1, max_devices=6,
                              cooldown_cycles=8_000.0)
        _, report = serve(n_requests=80, n_devices=2, seed=3,
                          scale=0.04, execution="model", tracer=tracer,
                          autoscale=cfg, shape="bursty+zipf")
        assert report.autoscale is not None
        assert report.autoscale.scale_ups > 0
        assert tracer.by_cat("drain"), "no drain recorded"
        assert check_no_service_on_draining_device(tracer) == []
        assert check_trace(tracer) == []
