"""Mathematical property tests: linearity of the accelerated kernels.

SpMV is linear in its operand; a Gauss-Seidel sweep is *jointly linear*
in ``(b, x_old)`` (it is a fixed affine map with zero offset:
``x_new = (L+D)^{-1} (b - U x_old)``).  The accelerator must preserve
these identities to floating-point tolerance — a strong whole-pipeline
invariant that catches dataflow mistakes no single example would.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Alrescha, KernelType


@st.composite
def spd_with_vectors(draw):
    n = draw(st.integers(4, 28))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n))
    nnz = max(1, int(draw(st.floats(0.05, 0.4)) * n * n))
    i = rng.integers(0, n, size=nnz)
    j = rng.integers(0, n, size=nnz)
    a[i, j] = rng.normal(size=nnz)
    a = (a + a.T) / 2
    np.fill_diagonal(a, 0.0)
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    vecs = rng.normal(size=(4, n))
    alpha = draw(st.floats(-3.0, 3.0))
    return a, vecs, alpha


@settings(max_examples=20, deadline=None)
@given(spd_with_vectors())
def test_spmv_is_linear(case):
    a, vecs, alpha = case
    acc = Alrescha.from_matrix(KernelType.SPMV, a)
    x1, x2 = vecs[0], vecs[1]
    y1, _ = acc.run_spmv(x1)
    y2, _ = acc.run_spmv(x2)
    y_sum, _ = acc.run_spmv(x1 + alpha * x2)
    np.testing.assert_allclose(y_sum, y1 + alpha * y2,
                               rtol=1e-9, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(spd_with_vectors())
def test_symgs_sweep_is_jointly_linear(case):
    a, vecs, alpha = case
    acc = Alrescha.from_matrix(KernelType.SYMGS, a)
    b1, x1, b2, x2 = vecs
    out1, _ = acc.run_symgs_sweep(b1, x1)
    out2, _ = acc.run_symgs_sweep(b2, x2)
    combined, _ = acc.run_symgs_sweep(b1 + alpha * b2, x1 + alpha * x2)
    np.testing.assert_allclose(combined, out1 + alpha * out2,
                               rtol=1e-8, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(spd_with_vectors())
def test_symgs_zero_inputs_give_zero(case):
    a, _vecs, _alpha = case
    n = a.shape[0]
    acc = Alrescha.from_matrix(KernelType.SYMGS, a)
    out, _ = acc.run_symgs_sweep(np.zeros(n), np.zeros(n))
    np.testing.assert_allclose(out, 0.0, atol=1e-12)


@settings(max_examples=15, deadline=None)
@given(spd_with_vectors())
def test_pr_pass_is_linear_in_rank(case):
    a, vecs, alpha = case
    structure = (np.abs(a) > 0).astype(float)
    np.fill_diagonal(structure, 0.0)
    acc = Alrescha.from_matrix(KernelType.PAGERANK, structure.T.copy())
    n = a.shape[0]
    outdeg = structure.sum(axis=1)
    r1 = np.abs(vecs[0]) + 0.01
    r2 = np.abs(vecs[1]) + 0.01
    c1, _ = acc.run_pr_pass(r1, outdeg)
    c2, _ = acc.run_pr_pass(r2, outdeg)
    c_sum, _ = acc.run_pr_pass(r1 + abs(alpha) * r2, outdeg)
    np.testing.assert_allclose(c_sum, c1 + abs(alpha) * c2,
                               rtol=1e-9, atol=1e-9)
