"""Unit tests for the BCSR format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import BCSRMatrix, COOMatrix


class TestConstruction:
    @pytest.mark.parametrize("omega", [2, 4, 8])
    def test_round_trip(self, spd_small, omega):
        bcsr = BCSRMatrix.from_dense(spd_small, omega)
        np.testing.assert_allclose(bcsr.to_dense(), spd_small)

    def test_padding_for_non_multiple_size(self, spd_small):
        # 17x17 with omega=8 -> 3x3 block grid.
        bcsr = BCSRMatrix.from_dense(spd_small, 8)
        assert bcsr.n_block_rows == 3
        assert bcsr.n_block_cols == 3
        np.testing.assert_allclose(bcsr.to_dense(), spd_small)

    def test_blocks_are_dense_omega_squared(self, spd_small):
        bcsr = BCSRMatrix.from_dense(spd_small, 4)
        assert bcsr.blocks.shape[1:] == (4, 4)
        assert bcsr.stored_values == bcsr.n_blocks * 16

    def test_only_nonempty_blocks_stored(self):
        dense = np.zeros((16, 16))
        dense[0, 0] = 1.0
        dense[15, 15] = 2.0
        bcsr = BCSRMatrix.from_dense(dense, 8)
        assert bcsr.n_blocks == 2

    def test_empty_matrix(self):
        bcsr = BCSRMatrix.from_dense(np.zeros((8, 8)), 4)
        assert bcsr.n_blocks == 0
        assert bcsr.nnz == 0

    def test_invalid_omega(self, spd_small):
        with pytest.raises(FormatError):
            BCSRMatrix.from_dense(spd_small, 0)


class TestValidation:
    def test_indptr_length(self):
        with pytest.raises(FormatError):
            BCSRMatrix((8, 8), 4, [0, 0], [], np.zeros((0, 4, 4)))

    def test_block_shape(self):
        with pytest.raises(FormatError):
            BCSRMatrix((8, 8), 4, [0, 1, 1], [0], np.zeros((1, 3, 3)))

    def test_block_col_range(self):
        with pytest.raises(FormatError):
            BCSRMatrix((8, 8), 4, [0, 1, 1], [7], np.zeros((1, 4, 4)))


class TestOperations:
    def test_spmv(self, spd_medium, rng):
        bcsr = BCSRMatrix.from_dense(spd_medium, 8)
        x = rng.normal(size=spd_medium.shape[1])
        np.testing.assert_allclose(bcsr.spmv(x), spd_medium @ x)

    def test_block_row_access(self, spd_small):
        bcsr = BCSRMatrix.from_dense(spd_small, 8)
        total = sum(len(bcsr.block_row(i)) for i in range(bcsr.n_block_rows))
        assert total == bcsr.n_blocks

    def test_block_map_covers_matrix(self, spd_small):
        bcsr = BCSRMatrix.from_dense(spd_small, 8)
        rebuilt = np.zeros((24, 24))
        for (i, j), blk in bcsr.block_map().items():
            rebuilt[i * 8:(i + 1) * 8, j * 8:(j + 1) * 8] = blk
        np.testing.assert_allclose(rebuilt[:17, :17], spd_small)

    def test_block_density(self):
        dense = np.zeros((8, 8))
        dense[:4, :4] = 1.0  # 16 nnz in one 8x8 block
        bcsr = BCSRMatrix.from_dense(dense, 8)
        assert bcsr.block_density == pytest.approx(16.0 / 64.0)

    def test_diagonal_block_nnz(self, banded_spd):
        bcsr = BCSRMatrix.from_dense(banded_spd, 8)
        # Banded with bandwidth 3 < 8: most nnz sit in diagonal blocks.
        assert bcsr.diagonal_block_nnz() > bcsr.nnz / 2

    def test_metadata_below_csr_for_blocky(self, banded_spd):
        from repro.formats import CSRMatrix
        bcsr = BCSRMatrix.from_dense(banded_spd, 8)
        csr = CSRMatrix.from_dense(banded_spd)
        assert bcsr.metadata_bits() < csr.metadata_bits()
