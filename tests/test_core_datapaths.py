"""Unit tests for the dense data-path implementations (§4.2)."""

import numpy as np
import pytest

from repro.core import DataPathType, FixedComputeUnit, \
    ReconfigurableComputeUnit
from repro.core.datapaths import (
    DataPathTiming,
    dbfs_block,
    dpr_block,
    dsssp_block,
    dsymgs_block,
    gemv_block,
)
from repro.errors import SimulationError


@pytest.fixture
def fcu():
    return FixedComputeUnit()


@pytest.fixture
def rcu():
    return ReconfigurableComputeUnit()


@pytest.fixture
def block(rng):
    b = rng.normal(size=(8, 8))
    b[rng.random((8, 8)) < 0.5] = 0.0
    return b


class TestGEMV:
    def test_matches_numpy(self, fcu, block, rng):
        x = rng.normal(size=8)
        np.testing.assert_allclose(gemv_block(fcu, block, x), block @ x)

    def test_reversed_block_same_product(self, fcu, block, rng):
        """An upper-triangle block stored column-reversed, read r2l,
        produces the original product exactly."""
        x = rng.normal(size=8)
        stored = block[:, ::-1]
        np.testing.assert_allclose(
            gemv_block(fcu, stored, x, reversed_cols=True), block @ x
        )

    def test_wrong_block_shape(self, fcu):
        with pytest.raises(SimulationError):
            gemv_block(fcu, np.zeros((4, 4)), np.zeros(8))

    def test_wrong_chunk_shape(self, fcu, block):
        with pytest.raises(SimulationError):
            gemv_block(fcu, block, np.zeros(4))

    def test_alu_activity_equals_block_nnz(self, fcu, block, rng):
        gemv_block(fcu, block, rng.normal(size=8))
        assert fcu.counters.get("alu_op") == np.count_nonzero(block)


class TestDSymGS:
    def test_solves_block_row_exactly(self, fcu, rcu, rng):
        """One D-SymGS block equals a forward Gauss-Seidel restricted to
        the block, given the external accumulator."""
        n = 8
        body = rng.normal(size=(n, n))
        np.fill_diagonal(body, 0.0)
        diag = rng.uniform(2.0, 4.0, size=n)
        b = rng.normal(size=n)
        x_old = rng.normal(size=n)
        acc = rng.normal(size=n)
        out = dsymgs_block(fcu, rcu, body, diag, b, x_old, acc, n)
        expected = np.zeros(n)
        for r in range(n):
            s = acc[r] + body[r, :r] @ expected[:r] \
                + body[r, r + 1:] @ x_old[r + 1:]
            expected[r] = (b[r] - s) / diag[r]
        np.testing.assert_allclose(out, expected)

    def test_padding_rows_stay_zero(self, fcu, rcu, rng):
        body = np.zeros((8, 8))
        diag = np.ones(8)
        out = dsymgs_block(fcu, rcu, body, diag, np.ones(8),
                           np.zeros(8), np.zeros(8), valid_rows=5)
        np.testing.assert_allclose(out[5:], 0.0)
        np.testing.assert_allclose(out[:5], 1.0)

    def test_zero_diagonal_raises(self, fcu, rcu):
        with pytest.raises(SimulationError):
            dsymgs_block(fcu, rcu, np.zeros((8, 8)), np.zeros(8),
                         np.ones(8), np.zeros(8), np.zeros(8), 8)

    def test_pe_ops_counted(self, fcu, rcu, rng):
        diag = np.ones(8)
        dsymgs_block(fcu, rcu, np.zeros((8, 8)), diag, np.ones(8),
                     np.zeros(8), np.zeros(8), 8)
        # One sub + one div per valid row.
        assert rcu.counters.get("pe_op") == 16.0


class TestGraphBlocks:
    def test_dbfs_min_plus_unit(self, fcu):
        block = np.zeros((8, 8))
        block[0, 1] = 1.0
        block[0, 3] = 1.0
        dist = np.full(8, np.inf)
        dist[1] = 5.0
        dist[3] = 2.0
        out = dbfs_block(fcu, block, dist)
        assert out[0] == pytest.approx(3.0)   # min(5+1, 2+1)
        assert np.isinf(out[1])

    def test_dsssp_uses_weights(self, fcu):
        block = np.zeros((8, 8))
        block[2, 0] = 7.0
        block[2, 1] = 1.5
        dist = np.zeros(8)
        out = dsssp_block(fcu, block, dist)
        assert out[2] == pytest.approx(1.5)

    def test_dsssp_inf_propagates(self, fcu):
        block = np.zeros((8, 8))
        block[0, 1] = 2.0
        dist = np.full(8, np.inf)
        out = dsssp_block(fcu, block, dist)
        assert np.isinf(out[0])

    def test_dpr_sums_rank_over_outdeg(self, fcu, rcu):
        block = np.zeros((8, 8))
        block[0, 1] = 1.0
        block[0, 2] = 1.0
        rank = np.zeros(8)
        rank[1], rank[2] = 0.4, 0.6
        outdeg = np.zeros(8)
        outdeg[1], outdeg[2] = 2.0, 3.0
        out = dpr_block(fcu, rcu, block, rank, outdeg)
        assert out[0] == pytest.approx(0.4 / 2 + 0.6 / 3)

    def test_dpr_ignores_dangling_sources(self, fcu, rcu):
        block = np.zeros((8, 8))
        block[0, 1] = 1.0
        rank = np.full(8, 1.0)
        outdeg = np.zeros(8)  # vertex 1 has no out-edges recorded
        out = dpr_block(fcu, rcu, block, rank, outdeg)
        assert out[0] == 0.0


class TestTiming:
    @pytest.fixture
    def timing(self):
        return DataPathTiming(
            omega=8, n_alus=16, mem_bytes_per_cycle=115.2,
            alu_latency=3, re_sum_latency=3, re_min_latency=1,
        )

    def test_stream_cycles_per_block(self, timing):
        assert timing.stream_cycles_per_block() == pytest.approx(512 / 115.2)

    def test_streaming_paths_are_memory_bound(self, timing):
        compute = timing.compute_cycles_per_block(DataPathType.GEMV)
        assert compute <= timing.stream_cycles_per_block()

    def test_dsymgs_serialises(self, timing):
        dsymgs = timing.compute_cycles_per_block(DataPathType.D_SYMGS)
        gemv = timing.compute_cycles_per_block(DataPathType.GEMV)
        assert dsymgs > 5 * gemv

    def test_min_tree_fills_faster(self, timing):
        assert timing.pipeline_fill(DataPathType.D_BFS) < \
            timing.pipeline_fill(DataPathType.GEMV)

    def test_dsymgs_fill_includes_pes(self, timing):
        assert timing.pipeline_fill(DataPathType.D_SYMGS) > \
            timing.pipeline_fill(DataPathType.GEMV)

    def test_drain_covers_default_reconfig(self, timing):
        """The sum-tree drain (9 cycles) hides the default 8-cycle
        reconfiguration — the §4.4 design point."""
        assert timing.drain(DataPathType.GEMV) >= 8
