"""Compiled pass plans equal the per-block interpreter exactly.

The plan layer (:mod:`repro.core.plan`) is a pure lowering: same
functional outputs bit for bit, same :class:`SimReport` field for field.
These tests run every kernel through both paths — including
non-multiple-of-omega shapes and real datasets — and compare.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import Alrescha, AlreschaConfig, KernelType
from repro.core.plan import PLAN_KINDS, compile_pass
from repro.errors import SimulationError

REPORT_FIELDS = (
    "kernel", "cycles", "frequency_hz", "useful_bytes", "streamed_bytes",
    "sequential_cycles", "cache_busy_cycles", "exposed_reconfig_cycles",
    "n_entries", "n_switches", "energy_j", "bytes_per_cycle",
)


def assert_reports_identical(plan_rep, legacy_rep):
    """Field-for-field equality, including counters and per-path cycles."""
    for name in REPORT_FIELDS:
        assert getattr(plan_rep, name) == getattr(legacy_rep, name), name
    assert plan_rep.counters.as_dict() == legacy_rep.counters.as_dict()
    assert plan_rep.datapath_cycles == legacy_rep.datapath_cycles


def both_paths(acc, runner):
    """Run ``runner(acc)`` with the plan path, then with the legacy path."""
    acc.config.use_plan = True
    plan_out = runner(acc)
    acc.config.use_plan = False
    legacy_out = runner(acc)
    acc.config.use_plan = True
    return plan_out, legacy_out


def spd_matrix(n, seed=0, density=0.3):
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n))
    nnz = max(1, int(density * n * n))
    i = rng.integers(0, n, size=nnz)
    j = rng.integers(0, n, size=nnz)
    a[i, j] = rng.normal(size=nnz)
    a = (a + a.T) / 2
    np.fill_diagonal(a, 0.0)
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    return a


def digraph(n, seed=1, p=0.15):
    rng = np.random.default_rng(seed)
    a = (rng.random((n, n)) < p).astype(float)
    np.fill_diagonal(a, 0.0)
    g = sp.csr_matrix(a)
    g.data = rng.uniform(0.5, 5.0, size=g.nnz)
    return g


# Deliberately awkward sizes: below one block, non-multiples of omega=8,
# exact multiples, and just past a multiple.
SIZES = [5, 13, 16, 63, 70]


@pytest.mark.parametrize("n", SIZES)
def test_spmv_plan_equals_legacy(n):
    a = spd_matrix(n, seed=n)
    acc = Alrescha.from_matrix(KernelType.SPMV, a)
    x = np.random.default_rng(2).normal(size=n)
    (y1, r1), (y0, r0) = both_paths(acc, lambda acc: acc.run_spmv(x))
    np.testing.assert_array_equal(y1, y0)
    assert_reports_identical(r1, r0)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("reorder", [True, False])
def test_symgs_plan_equals_legacy(n, reorder):
    a = spd_matrix(n, seed=n + 1)
    acc = Alrescha.from_matrix(KernelType.SYMGS, a, reorder=reorder)
    rng = np.random.default_rng(3)
    b, x0 = rng.normal(size=n), rng.normal(size=n)
    (x1, r1), (x0_, r0) = both_paths(
        acc, lambda acc: acc.run_symgs_sweep(b, x0))
    np.testing.assert_array_equal(x1, x0_)
    assert_reports_identical(r1, r0)


@pytest.mark.parametrize("n", SIZES)
def test_bfs_plan_equals_legacy(n):
    g = digraph(n, seed=n)
    acc = Alrescha.from_matrix(KernelType.BFS, g)
    dist = np.full(n, np.inf)
    dist[0] = 0.0
    (d1, r1), (d0, r0) = both_paths(acc, lambda acc: acc.run_bfs_pass(dist))
    np.testing.assert_array_equal(d1, d0)
    assert_reports_identical(r1, r0)


@pytest.mark.parametrize("n", SIZES)
def test_bfs_parents_plan_equals_legacy(n):
    g = digraph(n, seed=n + 7)
    acc = Alrescha.from_matrix(KernelType.BFS, g)
    dist = np.full(n, np.inf)
    dist[0] = 0.0
    parent = np.full(n, -1, dtype=np.int64)
    (d1, p1, r1), (d0, p0, r0) = both_paths(
        acc, lambda acc: acc.run_bfs_pass_parents(dist, parent))
    np.testing.assert_array_equal(d1, d0)
    np.testing.assert_array_equal(p1, p0)
    assert_reports_identical(r1, r0)


@pytest.mark.parametrize("n", SIZES)
def test_sssp_plan_equals_legacy(n):
    g = digraph(n, seed=n + 11)
    acc = Alrescha.from_matrix(KernelType.SSSP, g)
    dist = np.full(n, np.inf)
    dist[0] = 0.0
    (d1, r1), (d0, r0) = both_paths(acc, lambda acc: acc.run_sssp_pass(dist))
    np.testing.assert_array_equal(d1, d0)
    assert_reports_identical(r1, r0)


@pytest.mark.parametrize("n", SIZES)
def test_pagerank_plan_equals_legacy(n):
    g = digraph(n, seed=n + 13)
    acc = Alrescha.from_matrix(KernelType.PAGERANK, g)
    rank = np.full(n, 1.0 / n)
    outdeg = np.asarray(g.sum(axis=0)).ravel()
    (k1, r1), (k0, r0) = both_paths(
        acc, lambda acc: acc.run_pr_pass(rank, outdeg))
    np.testing.assert_array_equal(k1, k0)
    assert_reports_identical(r1, r0)


def test_sptrsv_plan_equals_legacy():
    a = spd_matrix(21, seed=42)
    acc = Alrescha.from_matrix(KernelType.SYMGS, a)
    b = np.random.default_rng(5).normal(size=21)
    (x1, r1), (x0, r0) = both_paths(acc, lambda acc: acc.run_sptrsv(b))
    np.testing.assert_array_equal(x1, x0)
    assert_reports_identical(r1, r0)


def test_repeat_runs_share_one_template():
    """Two runs on the plan path yield independent but equal reports."""
    a = spd_matrix(20, seed=9)
    acc = Alrescha.from_matrix(KernelType.SPMV, a)
    x = np.ones(20)
    _, rep_a = acc.run_spmv(x)
    _, rep_b = acc.run_spmv(2 * x)
    assert_reports_identical(rep_a, rep_b)
    rep_a.counters.add("tampered")
    rep_a.datapath_cycles["tampered"] = 1.0
    assert "tampered" not in rep_b.counters
    assert "tampered" not in rep_b.datapath_cycles


def test_reprogram_invalidates_plans():
    acc = Alrescha.from_matrix(KernelType.SPMV, spd_matrix(16, seed=1))
    acc.run_spmv(np.ones(16))
    assert acc._plans
    from repro.core import convert
    a2 = spd_matrix(24, seed=2)
    acc.program(convert(KernelType.SPMV, a2, omega=acc.config.omega))
    assert not acc._plans
    y, _ = acc.run_spmv(np.ones(24))
    np.testing.assert_allclose(y, a2 @ np.ones(24), atol=1e-9)


def test_compile_plans_is_eager_and_idempotent():
    acc = Alrescha.from_matrix(KernelType.SYMGS, spd_matrix(16, seed=3))
    acc.compile_plans()
    assert "symgs" in acc._plans
    first = acc._plans["symgs"]
    acc.compile_plans()
    assert acc._plans["symgs"] is first


def test_compile_pass_rejects_unknown_kind():
    acc = Alrescha.from_matrix(KernelType.SPMV, spd_matrix(16, seed=4))
    with pytest.raises(SimulationError):
        compile_pass(acc, "not-a-kind")
    assert "symgs" in PLAN_KINDS


def test_plan_rejects_bad_operand_shapes():
    acc = Alrescha.from_matrix(KernelType.SPMV, spd_matrix(16, seed=5))
    with pytest.raises(SimulationError):
        acc.run_spmv(np.ones(17))
    acc = Alrescha.from_matrix(KernelType.SYMGS, spd_matrix(16, seed=5))
    with pytest.raises(SimulationError):
        acc.run_symgs_sweep(np.ones(16), np.ones(15))


def test_use_plan_flag_defaults_on():
    assert AlreschaConfig().use_plan is True


@pytest.mark.parametrize("name,kernel", [
    ("stencil27", KernelType.SPMV),
    ("stencil27", KernelType.SYMGS),
    ("Youtube", KernelType.BFS),
    ("Youtube", KernelType.PAGERANK),
])
def test_dataset_plan_equals_legacy(name, kernel):
    """Dataset-level equivalence on one scientific and one graph matrix."""
    from repro.datasets import load_dataset
    ds = load_dataset(name, scale=0.05)
    acc = Alrescha.from_matrix(kernel, ds.matrix)
    n = acc.n
    rng = np.random.default_rng(17)
    if kernel is KernelType.SPMV:
        x = rng.normal(size=n)
        run = lambda acc: acc.run_spmv(x)
    elif kernel is KernelType.SYMGS:
        b, x0 = rng.normal(size=n), rng.normal(size=n)
        run = lambda acc: acc.run_symgs_sweep(b, x0)
    elif kernel is KernelType.BFS:
        dist = np.full(n, np.inf)
        dist[0] = 0.0
        run = lambda acc: acc.run_bfs_pass(dist)
    else:
        rank = np.full(n, 1.0 / n)
        outdeg = np.asarray(
            sp.csr_matrix(ds.matrix).sum(axis=0)).ravel()
        run = lambda acc: acc.run_pr_pass(rank, outdeg)
    (out1, r1), (out0, r0) = both_paths(acc, run)
    np.testing.assert_array_equal(out1, out0)
    assert_reports_identical(r1, r0)


def test_backend_results_independent_of_plan_flag():
    """A full PCG solve is bit-identical on either path."""
    from repro.solvers.backends import AcceleratorBackend
    from repro.solvers.pcg import pcg
    a = spd_matrix(40, seed=8)
    b = np.random.default_rng(9).normal(size=40)
    results = {}
    for use_plan in (True, False):
        backend = AcceleratorBackend(
            a, config=AlreschaConfig(use_plan=use_plan))
        results[use_plan] = pcg(backend, b, tol=1e-10, max_iter=50)
    r_plan, r_legacy = results[True], results[False]
    np.testing.assert_array_equal(r_plan.x, r_legacy.x)
    assert r_plan.iterations == r_legacy.iterations
    assert_reports_identical(r_plan.report, r_legacy.report)
