"""Unit tests for the golden kernels (SpMV, SymGS, vector ops)."""

import numpy as np
import pytest

from repro.errors import ConfigError, ConvergenceError, ShapeError
from repro.kernels import (
    axpy,
    backward_sweep,
    dot,
    forward_sweep,
    forward_sweep_vectorized,
    norm2,
    spmv,
    symgs,
    to_csr,
    waxpby,
)


class TestVectorOps:
    def test_dot(self):
        assert dot([1.0, 2.0], [3.0, 4.0]) == pytest.approx(11.0)

    def test_waxpby(self):
        np.testing.assert_allclose(
            waxpby(2.0, [1.0, 1.0], 3.0, [1.0, 2.0]), [5.0, 8.0]
        )

    def test_axpy(self):
        np.testing.assert_allclose(axpy(2.0, [1.0, 0.0], [0.0, 1.0]),
                                   [2.0, 1.0])

    def test_norm2(self):
        assert norm2([3.0, 4.0]) == pytest.approx(5.0)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            dot([1.0], [1.0, 2.0])


class TestSpMV:
    def test_dense_input(self, spd_small, rng):
        x = rng.normal(size=17)
        np.testing.assert_allclose(spmv(spd_small, x), spd_small @ x)

    def test_scipy_input(self, small_digraph, rng):
        x = rng.normal(size=12)
        np.testing.assert_allclose(spmv(small_digraph, x),
                                   small_digraph @ x)

    def test_to_csr_idempotent(self, spd_small):
        csr = to_csr(spd_small)
        assert to_csr(csr) is csr


class TestForwardSweep:
    def test_matches_triangular_solve(self, spd_medium, rng):
        """x_new = (L+D)^{-1} (b - U x_old), checked against numpy."""
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        lower = np.tril(spd_medium)
        upper = np.triu(spd_medium, k=1)
        expected = np.linalg.solve(lower, b - upper @ x0)
        np.testing.assert_allclose(forward_sweep(spd_medium, b, x0),
                                   expected, atol=1e-10)

    def test_vectorized_matches_loop(self, spd_medium, rng):
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        np.testing.assert_allclose(
            forward_sweep_vectorized(spd_medium, b, x0),
            forward_sweep(spd_medium, b, x0),
            atol=1e-12,
        )

    def test_fixed_point_is_solution(self, banded_spd, rng):
        """The exact solution is a fixed point of the sweep."""
        x_true = rng.normal(size=40)
        b = banded_spd @ x_true
        out = forward_sweep(banded_spd, b, x_true)
        np.testing.assert_allclose(out, x_true, atol=1e-10)

    def test_zero_diagonal_rejected(self):
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(ConfigError):
            forward_sweep(a, np.ones(2), np.zeros(2))
        with pytest.raises(ConfigError):
            forward_sweep_vectorized(a, np.ones(2), np.zeros(2))

    def test_shape_checks(self, spd_small):
        with pytest.raises(ShapeError):
            forward_sweep(spd_small, np.zeros(3), np.zeros(17))
        with pytest.raises(ShapeError):
            forward_sweep(np.ones((2, 3)), np.zeros(2), np.zeros(2))


class TestBackwardAndSymmetric:
    def test_backward_matches_triangular_solve(self, spd_medium, rng):
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        upper = np.triu(spd_medium)
        lower = np.tril(spd_medium, k=-1)
        expected = np.linalg.solve(upper, b - lower @ x0)
        np.testing.assert_allclose(backward_sweep(spd_medium, b, x0),
                                   expected, atol=1e-10)

    def test_symgs_is_forward_then_backward(self, spd_medium, rng):
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        expected = backward_sweep(spd_medium, b,
                                  forward_sweep(spd_medium, b, x0))
        np.testing.assert_allclose(symgs(spd_medium, b, x0), expected)

    def test_sweeps_reduce_residual(self, banded_spd, rng):
        x_true = rng.normal(size=40)
        b = banded_spd @ x_true
        x = np.zeros(40)
        res_prev = np.linalg.norm(b - banded_spd @ x)
        for _ in range(5):
            x = symgs(banded_spd, b, x)
            res = np.linalg.norm(b - banded_spd @ x)
            assert res < res_prev
            res_prev = res

    def test_backward_on_reversed_equals_forward(self, spd_medium, rng):
        """Forward GS on P A P == backward GS on A (the accelerator
        backend's trick for the symmetric smoother)."""
        b = rng.normal(size=70)
        x0 = rng.normal(size=70)
        perm = np.arange(70)[::-1]
        reversed_a = spd_medium[perm][:, perm]
        fwd_on_rev = forward_sweep(reversed_a, b[::-1].copy(),
                                   x0[::-1].copy())
        np.testing.assert_allclose(fwd_on_rev[::-1],
                                   backward_sweep(spd_medium, b, x0),
                                   atol=1e-10)
