"""Unit tests for the event-based energy model."""

import pytest

from repro.sim import CounterSet, EnergyModel


class TestDynamicEnergy:
    def test_single_event(self):
        m = EnergyModel(event_energy_pj={"alu_op": 20.0}, static_power_w=0.0)
        assert m.energy_pj(CounterSet({"alu_op": 10.0})) == pytest.approx(200.0)

    def test_joule_conversion(self):
        m = EnergyModel(event_energy_pj={"alu_op": 1.0}, static_power_w=0.0)
        assert m.energy_j(CounterSet({"alu_op": 1e12})) == pytest.approx(1.0)

    def test_unknown_event_is_free(self):
        m = EnergyModel(static_power_w=0.0)
        assert m.energy_pj(CounterSet({"mystery_event": 100.0})) == 0.0

    def test_namespaced_counter_matches_suffix(self):
        m = EnergyModel(event_energy_pj={"cache_reads": 10.0},
                        static_power_w=0.0)
        e = m.energy_pj(CounterSet({"cache.cache_reads": 3.0}))
        assert e == pytest.approx(30.0)

    def test_buffer_counters_map_to_fifo_cost(self):
        m = EnergyModel(event_energy_pj={"fifo_access": 2.0,
                                         "stack_access": 5.0},
                        static_power_w=0.0)
        assert m.energy_pj(CounterSet({"A_fifo_pushes": 4.0})) \
            == pytest.approx(8.0)
        assert m.energy_pj(CounterSet({"link_pops": 2.0})) \
            == pytest.approx(10.0)

    def test_accepts_plain_mapping(self):
        m = EnergyModel(event_energy_pj={"alu_op": 2.0}, static_power_w=0.0)
        assert m.energy_pj({"alu_op": 3.0}) == pytest.approx(6.0)


class TestStaticEnergy:
    def test_static_power_charged_over_time(self):
        m = EnergyModel(event_energy_pj={}, static_power_w=1.0)
        # 1 W for 1 second = 1 J = 1e12 pJ.
        assert m.energy_pj(CounterSet(), elapsed_s=1.0) == pytest.approx(1e12)

    def test_combined(self):
        m = EnergyModel(event_energy_pj={"alu_op": 1.0}, static_power_w=1.0)
        e = m.energy_pj(CounterSet({"alu_op": 5.0}), elapsed_s=1e-12)
        assert e == pytest.approx(6.0)


class TestBreakdown:
    def test_breakdown_names_costs(self):
        m = EnergyModel(event_energy_pj={"alu_op": 2.0, "re_op": 3.0},
                        static_power_w=0.0)
        b = m.breakdown_pj(CounterSet({"alu_op": 1.0, "re_op": 2.0,
                                       "free": 9.0}))
        assert b == {"alu_op": 2.0, "re_op": 6.0}

    def test_defaults_contain_key_events(self):
        m = EnergyModel()
        for event in ("alu_op", "re_op", "pe_op", "dram_bytes",
                      "cache_reads", "config_write"):
            assert event in m.event_energy_pj
