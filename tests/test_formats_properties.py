"""Property-based tests (hypothesis) for the storage formats.

Invariants: every format round-trips any matrix exactly, all formats
agree on SpMV, and the Figure 12 ordering relations hold structurally.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.formats import (
    AlreschaMatrix,
    BCSRMatrix,
    COOMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    format_survey,
    index_bits,
)

matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 20), st.integers(1, 20)),
    elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, -1.0, 2.5, -0.5]),
)

square_matrices = arrays(
    dtype=np.float64,
    shape=st.integers(1, 18).map(lambda n: (n, n)),
    elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, -1.0, 3.0]),
)


@settings(max_examples=40, deadline=None)
@given(matrices)
def test_coo_round_trip(dense):
    np.testing.assert_allclose(COOMatrix.from_dense(dense).to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(matrices)
def test_csr_round_trip(dense):
    np.testing.assert_allclose(CSRMatrix.from_dense(dense).to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(matrices)
def test_ell_round_trip(dense):
    np.testing.assert_allclose(ELLMatrix.from_dense(dense).to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(matrices)
def test_dia_round_trip(dense):
    np.testing.assert_allclose(DIAMatrix.from_dense(dense).to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(matrices, st.sampled_from([2, 4, 8]))
def test_bcsr_round_trip(dense, omega):
    np.testing.assert_allclose(
        BCSRMatrix.from_dense(dense, omega).to_dense(), dense
    )


@settings(max_examples=40, deadline=None)
@given(square_matrices, st.sampled_from([2, 4, 8]))
def test_alrescha_symgs_round_trip(dense, omega):
    alr = AlreschaMatrix.from_dense(dense, omega, symgs_layout=True)
    np.testing.assert_allclose(alr.to_dense(), dense)


@settings(max_examples=30, deadline=None)
@given(matrices)
def test_all_formats_agree_on_spmv(dense):
    x = np.arange(1.0, dense.shape[1] + 1.0)
    expected = dense @ x
    for fmt in (COOMatrix.from_dense(dense),
                CSRMatrix.from_dense(dense),
                ELLMatrix.from_dense(dense),
                DIAMatrix.from_dense(dense),
                BCSRMatrix.from_dense(dense, 4)):
        np.testing.assert_allclose(fmt.spmv(x), expected, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(matrices)
def test_nnz_consistent_across_formats(dense):
    expected = int(np.count_nonzero(dense))
    assert COOMatrix.from_dense(dense).nnz == expected
    assert CSRMatrix.from_dense(dense).nnz == expected
    assert ELLMatrix.from_dense(dense).nnz == expected
    assert DIAMatrix.from_dense(dense).nnz == expected
    assert BCSRMatrix.from_dense(dense, 4).nnz == expected


@settings(max_examples=20, deadline=None)
@given(square_matrices)
def test_format_survey_invariants(dense):
    survey = format_survey(dense, omega=4)
    # The Alrescha format never streams meta-data at runtime.
    assert survey["Alrescha (runtime)"] == 0.0
    # Alrescha's table budget equals BCSR's budget.
    assert survey["Alrescha"] == survey["BCSR"]
    # Meta-data costs are never negative.
    assert all(v >= 0.0 for v in survey.values())


@given(st.integers(1, 10**6))
def test_index_bits_sufficient(extent):
    bits = index_bits(extent)
    assert 2 ** bits >= extent


def test_index_bits_edge_cases():
    assert index_bits(0) == 0
    assert index_bits(1) == 1
    assert index_bits(2) == 1
    assert index_bits(3) == 2
    assert index_bits(256) == 8
    assert index_bits(257) == 9
