"""Artifact-store concurrency: two processes, one directory.

Writes go to a process-unique temp file followed by ``os.replace``, so
a reader never observes a half-written artifact: it sees either the
old bytes, the new bytes, or no file — all of which the load path
handles.  The subprocess tests drive two independent interpreters
against one store directory; the gc tests cover stray-temp sweeping
and deterministic size-bounded eviction.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.accelerator import AlreschaConfig
from repro.core.config import KernelType
from repro.store import ARTIFACT_SUFFIX, ArtifactStore

from .conftest import make_spd_dense

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_WORKER = """
import sys
import numpy as np
from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType
from repro.store import ArtifactStore

root, seed = sys.argv[1], int(sys.argv[2])
store = ArtifactStore(root)
gen = np.random.default_rng(3)  # same matrix in every process
a = np.zeros((24, 24))
i = gen.integers(0, 24, size=80)
j = gen.integers(0, 24, size=80)
a[i, j] = gen.normal(size=80)
a = (a + a.T) / 2.0
np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)

for _ in range(4):
    acc = Alrescha.from_matrix(
        KernelType.SPMV, a,
        config=AlreschaConfig(artifact_store=store))
    x = np.random.default_rng(seed).normal(size=24)
    y, _ = acc.run_spmv(x)
rep = store.report()
print(f"compiled={rep.conversions_compiled} "
      f"loaded={rep.conversions_loaded} "
      f"corrupt={rep.corrupt_fallbacks} "
      f"crc={float(np.abs(y).sum()):.17g}")
"""


def _spawn(root, seed):
    env = dict(os.environ)
    src = os.path.join(_REPO, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-c", _WORKER, str(root), str(seed)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True)


class TestTwoProcesses:
    def test_concurrent_writers_never_corrupt(self, tmp_path):
        """Both processes race to create the same artifact; whatever
        interleaving os.replace produces, neither sees corruption and
        the surviving file verifies."""
        procs = [_spawn(tmp_path, seed) for seed in (1, 2)]
        outs = [p.communicate(timeout=120) for p in procs]
        for p, (out, err) in zip(procs, outs):
            assert p.returncode == 0, err
            assert "corrupt=0" in out
        store = ArtifactStore(tmp_path)
        assert len(store.keys()) == 1
        assert store.verify() == []
        # No temp droppings left behind.
        assert [f for f in os.listdir(tmp_path)
                if ".tmp." in f] == []

    def test_second_process_loads_what_first_stored(self, tmp_path):
        first = _spawn(tmp_path, 1)
        out1, err1 = first.communicate(timeout=120)
        assert first.returncode == 0, err1
        assert "compiled=1" in out1

        second = _spawn(tmp_path, 2)
        out2, err2 = second.communicate(timeout=120)
        assert second.returncode == 0, err2
        assert "compiled=0" in out2
        assert "loaded=1" in out2


class TestAtomicity:
    def test_temp_then_rename(self, tmp_path, monkeypatch):
        """The artifact path never exists in a partial state: the bytes
        land in a pid-tagged temp file first and appear at the final
        name only via os.replace."""
        observed = []
        real_replace = os.replace

        def spy(src, dst):
            observed.append((os.path.basename(str(src)),
                             os.path.basename(str(dst))))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        store = ArtifactStore(tmp_path)
        store.conversion(KernelType.SPMV, make_spd_dense(12, seed=1),
                         AlreschaConfig())
        assert observed, "write bypassed the atomic-rename path"
        for src, dst in observed:
            assert f".tmp.{os.getpid()}" in src
            assert dst.endswith(ARTIFACT_SUFFIX)


class TestGc:
    def _fill(self, store, count=3):
        keys = []
        for i in range(count):
            _, key = store.conversion(
                KernelType.SPMV, make_spd_dense(12 + 3 * i, seed=i),
                AlreschaConfig())
            keys.append(key)
        return keys

    def test_gc_sweeps_stray_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._fill(store, count=1)
        stray = tmp_path / f"dead{ARTIFACT_SUFFIX}.tmp.99999"
        stray.write_bytes(b"half-written")
        removed, freed = store.gc(max_bytes=None)
        assert not stray.exists()
        assert removed == []  # no size bound: artifacts stay
        assert freed >= len(b"half-written")

    def test_gc_oldest_first_until_under_budget(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = self._fill(store)
        sizes = {k: os.path.getsize(store.path_for(k)) for k in keys}
        # Age order == insertion order; make it unambiguous.
        for i, k in enumerate(keys):
            os.utime(store.path_for(k), (1000 + i, 1000 + i))
        budget = sizes[keys[1]] + sizes[keys[2]]
        removed, freed = store.gc(max_bytes=budget)
        assert removed == [keys[0]]
        assert freed == sizes[keys[0]]
        assert sorted(store.keys()) == sorted(keys[1:])

    def test_gc_all_empties_store_and_memory(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = self._fill(store)
        removed, _ = store.gc(remove_all=True)
        assert sorted(removed) == sorted(keys)
        assert store.keys() == []
        assert store.report().entries_in_memory == 0
        # A fresh request recompiles rather than resurrecting memory.
        store.conversion(KernelType.SPMV, make_spd_dense(12, seed=0),
                         AlreschaConfig())
        assert store.report().memory_hits == 0

    def test_gc_determinism_on_mtime_ties(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = self._fill(store)
        for k in keys:
            os.utime(store.path_for(k), (1000, 1000))
        removed, _ = store.gc(max_bytes=0)
        # Ties broken by key: removal order is sorted, reproducible.
        assert removed == sorted(keys)
