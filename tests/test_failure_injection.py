"""Failure-injection tests: the simulator fails loudly, not silently.

Corrupted streams, mismatched tables, singular systems and poisoned
values must surface as typed errors (or NaNs that tests can observe),
never as quietly wrong results.  The runtime-fault half exercises the
resilience subsystem end to end: seeded :class:`~repro.sim.faults.
FaultModel` injection, checksum detection, bounded re-stream retries,
cross-check fallback from the compiled plan to the interpreter, and
counter reconciliation against the injection log.
"""

import numpy as np
import pytest

from repro.core import Alrescha, AlreschaConfig, KernelType, convert
from repro.core.config import ConfigEntry, ConfigTable, DataPathType, \
    AccessOrder, OperandPort
from repro.core.convert import ConversionResult
from repro.errors import (CapacityError, ConfigError, ConvergenceError,
                          CorruptionError, FaultError, ReproError,
                          SimulationError)
from repro.sim.faults import FaultModel, payload_checksum


class TestCorruptedPrograms:
    def test_table_referencing_missing_block(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=8)
        bad_table = ConfigTable(conv.table.n, conv.table.omega)
        for e in conv.table:
            bad_table.add(e)
        # Reference a block that was never streamed.
        bad_table.add(ConfigEntry(
            DataPathType.GEMV, 0, 0, AccessOrder.L2R, OperandPort.PORT1,
            block_row=2, block_col=2,
        ))
        bad = ConversionResult(
            kernel=conv.kernel, omega=conv.omega, table=bad_table,
            matrix=conv.matrix, bcsr=conv.bcsr,
        )
        acc = Alrescha()
        present = {(b.block_row, b.block_col)
                   for b in conv.matrix.stream()}
        if (2, 2) in present:
            pytest.skip("fixture happens to contain block (2,2)")
        with pytest.raises(ConfigError):
            acc.program(bad)

    def test_omega_mismatch(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=4)
        with pytest.raises(ConfigError):
            Alrescha(AlreschaConfig(omega=8)).program(conv)

    def test_every_repro_error_is_catchable_at_base(self, spd_small):
        with pytest.raises(ReproError):
            convert(KernelType.SYMGS, np.ones((4, 8)), omega=4)


class TestSingularSystems:
    def test_zero_diagonal_detected_at_program_time(self):
        """Regression: a zero pivot used to slip through ``program()``
        and only surface as a SimulationError mid-sweep."""
        a = np.eye(16)
        a[5, 5] = 0.0
        a[5, 6] = 1.0  # keep the row non-empty
        a[6, 5] = 1.0
        with pytest.raises(ConfigError, match="row 5"):
            Alrescha.from_matrix(KernelType.SYMGS, a)

    def test_nonfinite_diagonal_detected_at_program_time(self):
        a = np.eye(16)
        a[7, 7] = np.nan
        with pytest.raises(ConfigError, match="row 7"):
            Alrescha.from_matrix(KernelType.SYMGS, a)

    def test_missing_pivot_in_live_block_detected_at_program_time(self):
        """A row whose pivot is zero inside an otherwise live diagonal
        block (the system is singular; D-SymGS cannot divide by it)."""
        a = np.eye(16)
        a[3, :] = 0.0
        a[:, 3] = 0.0
        a[3, 3] = 0.0
        # Whole block row 0 is not empty (other diag entries), so only
        # row 3 inside the diagonal block lacks a pivot.
        with pytest.raises(ConfigError, match="row 3"):
            Alrescha.from_matrix(KernelType.SYMGS, a)


class TestPoisonedValues:
    def test_nan_propagates_visibly_spmv(self, spd_small):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        x = np.ones(17)
        x[0] = np.nan
        y, _ = acc.run_spmv(x)
        assert np.isnan(y).any()

    def test_inf_input_does_not_crash_bfs(self, random_digraph):
        at = random_digraph.T.tocsr().copy()
        at.data = np.ones_like(at.data)
        acc = Alrescha.from_matrix(KernelType.BFS, at)
        dist = np.full(60, np.inf)  # no source at all
        new, _ = acc.run_bfs_pass(dist)
        assert np.isinf(new).all()


class TestOperandShapeErrors:
    @pytest.mark.parametrize("kernel,method,args", [
        (KernelType.SPMV, "run_spmv", (np.zeros(5),)),
        (KernelType.BFS, "run_bfs_pass", (np.zeros(5),)),
        (KernelType.SSSP, "run_sssp_pass", (np.zeros(5),)),
    ])
    def test_wrong_length_operands(self, spd_small, kernel, method, args):
        matrix = np.abs(spd_small)  # non-negative weights for sssp
        acc = Alrescha.from_matrix(kernel, matrix)
        with pytest.raises(SimulationError):
            getattr(acc, method)(*args)

    def test_pr_operand_mismatch(self, spd_small):
        acc = Alrescha.from_matrix(KernelType.PAGERANK, np.abs(spd_small))
        with pytest.raises(SimulationError):
            acc.run_pr_pass(np.zeros(17), np.zeros(5))


def _counter_reconciliation(report, fm):
    """Assert the report's fault counters match the injection log."""
    assert report.counters.get("faults_injected") == fm.injected
    assert report.counters.get("faults_detected") == fm.detected
    assert report.counters.get("faults_corrected") == fm.corrected
    assert report.counters.get("retry_cycles") == \
        pytest.approx(fm.total_retry_cycles)


class TestFaultModel:
    def test_deterministic_under_seed(self):
        blocks = [np.full((8, 8), float(i)) for i in range(64)]
        logs = []
        for _ in range(2):
            fm = FaultModel(rate=0.3, seed=7)
            for b in blocks:
                try:
                    fm.deliver(b, payload_checksum(b), restream_cycles=8.0)
                except FaultError:
                    pass
            logs.append([(e.index, e.kind, e.detected, e.corrected,
                          e.retry_cycles, e.detail) for e in fm.log])
        assert logs[0] == logs[1] and logs[0]

    def test_reset_replays_the_same_sequence(self):
        fm = FaultModel(rate=0.5, seed=3, kinds=("latency",))
        b = np.zeros((4, 4))
        first = [fm.deliver(b)[2] is not None for _ in range(32)]
        fm.reset()
        second = [fm.deliver(b)[2] is not None for _ in range(32)]
        assert first == second
        assert fm.transfers == 32

    def test_parse(self):
        fm = FaultModel.parse("0.01:42")
        assert fm.rate == 0.01 and fm.seed == 42
        assert FaultModel.parse("0.5").seed == 0
        with pytest.raises(ConfigError):
            FaultModel.parse("lots")
        with pytest.raises(ConfigError):
            FaultModel(rate=1.5)
        with pytest.raises(ConfigError):
            FaultModel(rate=0.1, kinds=("gamma-ray",))

    def test_rate_zero_is_a_noop(self):
        fm = FaultModel(rate=0.0, seed=1)
        b = np.ones((8, 8))
        vals, extra, event = fm.deliver(b, payload_checksum(b))
        assert vals is b and extra == 0.0 and event is None
        assert fm.injected == 0


class TestRuntimeFaults:
    """Seeded faults through the full stream–compute path."""

    def _run_pair(self, matrix, fault_model, use_plan=False, **cfg):
        """Run SpMV clean and faulted on identically programmed engines."""
        x = np.arange(matrix.shape[0], dtype=np.float64)
        clean = Alrescha.from_matrix(
            KernelType.SPMV, matrix,
            config=AlreschaConfig(use_plan=use_plan))
        y_clean, rep_clean = clean.run_spmv(x)
        acc = Alrescha.from_matrix(
            KernelType.SPMV, matrix,
            config=AlreschaConfig(use_plan=use_plan,
                                  fault_model=fault_model, **cfg))
        y, rep = acc.run_spmv(x)
        return y_clean, rep_clean, y, rep, acc

    def test_checksum_detected_bitflip_is_corrected(self, spd_small):
        """A bitflip against the programmed CRC is re-streamed: the
        result is bit-identical to the clean run and every counter
        reconciles with the injection log."""
        fm = FaultModel(rate=0.25, seed=11, kinds=("bitflip",))
        y_clean, _, y, rep, _ = self._run_pair(spd_small, fm)
        assert fm.injected > 0
        assert fm.detected == fm.injected  # CRC catches every flip
        assert fm.corrected == fm.injected
        assert np.array_equal(y, y_clean)
        _counter_reconciliation(rep, fm)
        assert rep.counters.get("retry_cycles") > 0.0

    def test_dropped_burst_is_retried_and_charged(self, spd_small):
        fm = FaultModel(rate=0.2, seed=5, kinds=("drop",))
        y_clean, rep_clean, y, rep, _ = self._run_pair(spd_small, fm)
        assert fm.injected > 0
        assert np.array_equal(y, y_clean)
        _counter_reconciliation(rep, fm)
        # Recovery is visible in time and traffic, not in values.
        assert rep.cycles > rep_clean.cycles
        assert rep.counters.get("fault_restreams") >= fm.injected
        assert rep.counters.get("dram_requests") > \
            rep_clean.counters.get("dram_requests")

    def test_duplicate_burst_discarded_but_charged(self, spd_small):
        fm = FaultModel(rate=0.3, seed=2, kinds=("duplicate",))
        y_clean, rep_clean, y, rep, _ = self._run_pair(spd_small, fm)
        assert fm.injected > 0
        assert np.array_equal(y, y_clean)
        assert rep.cycles > rep_clean.cycles
        assert rep.counters.get("faults_corrected") == fm.injected

    def test_latency_spike_changes_only_timing(self, spd_small):
        fm = FaultModel(rate=0.3, seed=9, kinds=("latency",))
        y_clean, rep_clean, y, rep, _ = self._run_pair(spd_small, fm)
        assert fm.injected > 0
        assert np.array_equal(y, y_clean)
        assert rep.cycles == pytest.approx(
            rep_clean.cycles
            + rep.counters.get("fault_latency_cycles"))

    def test_persistent_fault_exhausts_retries(self, spd_small):
        fm = FaultModel(rate=1.0, seed=0, kinds=("drop",), persistent=True)
        acc = Alrescha.from_matrix(
            KernelType.SPMV, spd_small,
            config=AlreschaConfig(use_plan=False, fault_model=fm))
        with pytest.raises(FaultError, match="re-stream retries"):
            acc.run_spmv(np.ones(17))
        assert fm.log and not fm.log[-1].corrected

    def test_silent_bitflip_without_checksums(self, spd_small):
        """With checksum verification off, a bitflip is delivered
        silently — logged as such, and the result really is wrong
        (which is exactly what the cross-check layer exists for)."""
        fm = FaultModel(rate=0.25, seed=11, kinds=("bitflip",))
        _, _, y, rep, _ = self._run_pair(spd_small, fm,
                                         verify_checksums=False)
        assert fm.injected > 0
        assert fm.detected == 0
        assert all(e.silent for e in fm.log)
        assert rep.counters.get("faults_silent") == fm.injected
        assert rep.counters.get("retry_cycles") == 0.0

    def test_plan_path_matches_interpreter_under_faults(self, spd_small):
        """The compiled plan consults the same fault model in the same
        transfer order, so a replayed seed produces the identical
        event log and identical delivered values."""
        x = np.arange(17, dtype=np.float64)
        results = []
        for use_plan in (False, True):
            fm = FaultModel(rate=0.25, seed=13, kinds=("bitflip", "drop"))
            acc = Alrescha.from_matrix(
                KernelType.SPMV, spd_small,
                config=AlreschaConfig(use_plan=use_plan, fault_model=fm))
            y, rep = acc.run_spmv(x)
            results.append((y, [(e.index, e.kind, e.retry_cycles)
                                for e in fm.log],
                            rep.counters.get("faults_injected"),
                            rep.counters.get("retry_cycles")))
        (y_i, log_i, n_i, rc_i), (y_p, log_p, n_p, rc_p) = results
        assert np.array_equal(y_i, y_p)
        assert log_i == log_p and log_i
        assert n_i == n_p and rc_i == rc_p

    def test_crosscheck_falls_back_to_interpreter(self, spd_small):
        """A silent bitflip under the compiled plan is caught by the
        sampled cross-check; the plan's output is discarded, the
        interpreter reruns with forced checksum verification, and the
        final answer is bit-identical to a clean run."""
        x = np.arange(17, dtype=np.float64)
        clean = Alrescha.from_matrix(
            KernelType.SPMV, spd_small,
            config=AlreschaConfig(use_plan=True))
        y_clean, _ = clean.run_spmv(x)

        fm = FaultModel(rate=0.25, seed=11, kinds=("bitflip",))
        acc = Alrescha.from_matrix(
            KernelType.SPMV, spd_small,
            config=AlreschaConfig(use_plan=True, fault_model=fm,
                                  verify_checksums=False,
                                  crosscheck_rows=1.0,
                                  crosscheck_threshold=1))
        y, rep = acc.run_spmv(x)
        assert rep.counters.get("crosscheck_mismatches") > 0
        assert rep.counters.get("plan_fallbacks") == 1.0
        assert rep.counters.get("crosscheck_wasted_cycles") > 0.0
        assert acc.plan_degraded
        assert np.array_equal(y, y_clean)
        # Once degraded, later runs go straight to the (verifying)
        # interpreter and keep producing clean answers.
        y2, rep2 = acc.run_spmv(x)
        assert np.array_equal(y2, y_clean)
        assert rep2.counters.get("plan_fallbacks") == 0.0

    def test_clean_crosscheck_passes_without_fallback(self, spd_small):
        x = np.arange(17, dtype=np.float64)
        base = Alrescha.from_matrix(KernelType.SPMV, spd_small,
                                    config=AlreschaConfig(use_plan=True))
        y_base, _ = base.run_spmv(x)
        acc = Alrescha.from_matrix(
            KernelType.SPMV, spd_small,
            config=AlreschaConfig(use_plan=True, crosscheck_rows=0.5))
        y, rep = acc.run_spmv(x)
        assert np.array_equal(y, y_base)
        assert rep.counters.get("crosscheck_rows") > 0
        assert rep.counters.get("crosscheck_mismatches") == 0.0
        assert not acc.plan_degraded

    def test_clean_path_reports_no_fault_counters(self, spd_small):
        """With no fault model attached (the default), no resilience
        counter is even *present* — the clean path is untouched."""
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        _, rep = acc.run_spmv(np.ones(17))
        for key in ("faults_injected", "faults_detected", "retry_cycles",
                    "crosscheck_rows", "plan_fallbacks"):
            assert key not in rep.counters.as_dict()

    def test_symgs_sweep_survives_detected_faults(self, banded_spd):
        fm = FaultModel(rate=0.15, seed=21, kinds=("bitflip", "drop"))
        r = np.arange(40, dtype=np.float64)
        clean = Alrescha.from_matrix(KernelType.SYMGS, banded_spd,
                                     config=AlreschaConfig(use_plan=False))
        x_clean, _ = clean.run_symgs_sweep(r, np.zeros(40))
        acc = Alrescha.from_matrix(
            KernelType.SYMGS, banded_spd,
            config=AlreschaConfig(use_plan=False, fault_model=fm))
        x, rep = acc.run_symgs_sweep(r, np.zeros(40))
        assert fm.injected > 0
        assert np.array_equal(x, x_clean)
        _counter_reconciliation(rep, fm)


class TestCapacityAndImageIntegrity:
    def test_oversized_image_rejected_at_program_time(self, spd_small):
        with pytest.raises(CapacityError, match="capacity_bytes"):
            Alrescha.from_matrix(
                KernelType.SPMV, spd_small,
                config=AlreschaConfig(memory_capacity_bytes=64))

    def test_default_capacity_accepts_small_systems(self, spd_small):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        assert acc.conversion is not None

    def test_device_image_bitflip_fails_checksum(self, spd_small):
        from repro.core.device_image import decode_image, encode_image
        from repro.formats.alrescha import AlreschaMatrix
        matrix = AlreschaMatrix.from_dense(spd_small, omega=8)
        data = bytearray(encode_image(matrix))
        data[-5] ^= 0x10  # corrupt payload, not the header
        with pytest.raises(CorruptionError, match="checksum"):
            decode_image(bytes(data))
        # The pristine image still round-trips.
        decode_image(bytes(bytearray(encode_image(matrix))))


class TestNonFiniteGuards:
    def test_fcu_guard_catches_poisoned_gemv(self, spd_small):
        """With the FCU reduction guard armed, a NaN operand surfaces
        as CorruptionError at the reduce boundary instead of quietly
        poisoning downstream iterations."""
        acc = Alrescha.from_matrix(
            KernelType.SPMV, spd_small,
            config=AlreschaConfig(use_plan=False, guard_nonfinite=True))
        x = np.ones(17)
        x[3] = np.nan
        with pytest.raises(CorruptionError, match="GEMV"):
            acc.run_spmv(x)

    def test_guard_off_by_default_keeps_nan_propagation(self, spd_small):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_small,
                                   config=AlreschaConfig(use_plan=False))
        x = np.ones(17)
        x[3] = np.nan
        y, _ = acc.run_spmv(x)
        assert np.isnan(y).any()

    def test_jacobi_divergence_names_the_sweep(self):
        from repro.solvers import jacobi
        a = np.array([[1.0, 10.0], [10.0, 1.0]])
        with np.errstate(over="ignore", invalid="ignore"):
            with pytest.raises(ConvergenceError, match="sweep"):
                jacobi(a, np.ones(2), sweeps=500, damping=1.0)


class _FlakyBackend:
    """Reference backend that raises a typed fault on chosen spmv calls."""

    def __init__(self, matrix, fail_on=(), error=FaultError,
                 poison_on=()):
        from repro.solvers import ReferenceBackend
        self._inner = ReferenceBackend(matrix)
        self.n = self._inner.n
        self._calls = 0
        self._fail_on = set(fail_on)
        self._poison_on = set(poison_on)
        self._error = error

    def spmv(self, x):
        self._calls += 1
        if self._calls in self._fail_on:
            raise self._error(f"injected fault on spmv call {self._calls}")
        y = self._inner.spmv(x)
        if self._calls in self._poison_on:
            y = y.copy()
            y[0] = np.nan
        return y

    def precondition(self, r):
        return self._inner.precondition(r)

    def report(self):
        return None


class TestSolverRecovery:
    def test_pcg_checkpoint_restart_recovers(self, spd_small):
        from repro.solvers import pcg
        b = np.ones(17)
        backend = _FlakyBackend(spd_small, fail_on=(4,))
        result = pcg(backend, b, tol=1e-10, max_iter=100,
                     checkpoint_interval=1)
        assert result.converged
        assert result.restarts == 1
        a = np.asarray(spd_small)
        assert np.linalg.norm(a @ result.x - b) < 1e-8 * np.linalg.norm(b)

    def test_pcg_without_checkpointing_propagates(self, spd_small):
        from repro.solvers import pcg
        backend = _FlakyBackend(spd_small, fail_on=(4,))
        with pytest.raises(FaultError):
            pcg(backend, np.ones(17), tol=1e-10, max_iter=100)

    def test_pcg_restart_budget_exhausts(self, spd_small):
        from repro.solvers import pcg
        backend = _FlakyBackend(spd_small,
                                fail_on=tuple(range(2, 40)))
        with pytest.raises(FaultError):
            pcg(backend, np.ones(17), tol=1e-10, max_iter=100,
                checkpoint_interval=1, max_restarts=2)

    def test_pcg_nonfinite_residual_is_typed(self, spd_small):
        from repro.solvers import pcg
        backend = _FlakyBackend(spd_small, poison_on=(2,))
        with pytest.raises(ConvergenceError, match="iteration"):
            pcg(backend, np.ones(17), tol=1e-12, max_iter=100)

    def test_cg_checkpoint_restart_recovers(self, spd_small):
        from repro.solvers import cg
        backend = _FlakyBackend(spd_small, fail_on=(5,))
        result = cg(backend, np.ones(17), tol=1e-10, max_iter=200,
                    checkpoint_interval=1)
        assert result.converged and result.restarts == 1

    def test_multigrid_cycle_retry(self):
        from repro.solvers.multigrid import MultigridPreconditioner
        mg = MultigridPreconditioner(4, 4, 4, n_levels=2,
                                     cycle_retries=1)
        flaky = _FlakyBackend(mg.levels[0].matrix, fail_on=(1,))
        mg.levels[0].backend = flaky
        r = np.ones(mg.levels[0].n)
        z = mg.apply(r)
        assert np.all(np.isfinite(z))
        assert mg.cycles_retried == 1

    def test_multigrid_without_retries_propagates(self):
        from repro.solvers.multigrid import MultigridPreconditioner
        mg = MultigridPreconditioner(4, 4, 4, n_levels=2)
        mg.levels[0].backend = _FlakyBackend(mg.levels[0].matrix,
                                             fail_on=(1,))
        with pytest.raises(FaultError):
            mg.apply(np.ones(mg.levels[0].n))


class TestFaultCLI:
    def test_inject_faults_flag(self, capsys):
        from repro.cli import main
        assert main(["run", "spmv", "--dataset", "stencil27",
                     "--scale", "0.05", "--inject-faults", "0.05:7"]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out

    def test_bad_fault_spec_is_a_config_error(self, capsys):
        from repro.cli import main
        assert main(["run", "spmv", "--dataset", "stencil27",
                     "--scale", "0.05", "--inject-faults", "nope"]) == 2
        err = capsys.readouterr().err
        assert "RATE[:SEED[:KINDS]]" in err
        assert "'nope'" in err  # the offending token is named


class TestValidationHarness:
    def test_validate_smoke(self):
        from repro.analysis import validate
        report = validate(scale=0.03,
                          datasets=["stencil27", "Youtube"])
        assert report.passed
        assert report.n_passed == len(report.cases) > 0
        assert "ok" in report.summary()

    def test_validation_detects_broken_hardware(self):
        """A mis-configured engine (too-narrow ALU row) fails fast."""
        with pytest.raises(ReproError):
            AlreschaConfig(omega=16, n_alus=8).make_fcu()
