"""Failure-injection tests: the simulator fails loudly, not silently.

Corrupted streams, mismatched tables, singular systems and poisoned
values must surface as typed errors (or NaNs that tests can observe),
never as quietly wrong results.
"""

import numpy as np
import pytest

from repro.core import Alrescha, AlreschaConfig, KernelType, convert
from repro.core.config import ConfigEntry, ConfigTable, DataPathType, \
    AccessOrder, OperandPort
from repro.core.convert import ConversionResult
from repro.errors import ConfigError, ReproError, SimulationError


class TestCorruptedPrograms:
    def test_table_referencing_missing_block(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=8)
        bad_table = ConfigTable(conv.table.n, conv.table.omega)
        for e in conv.table:
            bad_table.add(e)
        # Reference a block that was never streamed.
        bad_table.add(ConfigEntry(
            DataPathType.GEMV, 0, 0, AccessOrder.L2R, OperandPort.PORT1,
            block_row=2, block_col=2,
        ))
        bad = ConversionResult(
            kernel=conv.kernel, omega=conv.omega, table=bad_table,
            matrix=conv.matrix, bcsr=conv.bcsr,
        )
        acc = Alrescha()
        present = {(b.block_row, b.block_col)
                   for b in conv.matrix.stream()}
        if (2, 2) in present:
            pytest.skip("fixture happens to contain block (2,2)")
        with pytest.raises(ConfigError):
            acc.program(bad)

    def test_omega_mismatch(self, spd_small):
        conv = convert(KernelType.SPMV, spd_small, omega=4)
        with pytest.raises(ConfigError):
            Alrescha(AlreschaConfig(omega=8)).program(conv)

    def test_every_repro_error_is_catchable_at_base(self, spd_small):
        with pytest.raises(ReproError):
            convert(KernelType.SYMGS, np.ones((4, 8)), omega=4)


class TestSingularSystems:
    def test_zero_diagonal_detected_at_program_time(self):
        """Regression: a zero pivot used to slip through ``program()``
        and only surface as a SimulationError mid-sweep."""
        a = np.eye(16)
        a[5, 5] = 0.0
        a[5, 6] = 1.0  # keep the row non-empty
        a[6, 5] = 1.0
        with pytest.raises(ConfigError, match="row 5"):
            Alrescha.from_matrix(KernelType.SYMGS, a)

    def test_nonfinite_diagonal_detected_at_program_time(self):
        a = np.eye(16)
        a[7, 7] = np.nan
        with pytest.raises(ConfigError, match="row 7"):
            Alrescha.from_matrix(KernelType.SYMGS, a)

    def test_missing_pivot_in_live_block_detected_at_program_time(self):
        """A row whose pivot is zero inside an otherwise live diagonal
        block (the system is singular; D-SymGS cannot divide by it)."""
        a = np.eye(16)
        a[3, :] = 0.0
        a[:, 3] = 0.0
        a[3, 3] = 0.0
        # Whole block row 0 is not empty (other diag entries), so only
        # row 3 inside the diagonal block lacks a pivot.
        with pytest.raises(ConfigError, match="row 3"):
            Alrescha.from_matrix(KernelType.SYMGS, a)


class TestPoisonedValues:
    def test_nan_propagates_visibly_spmv(self, spd_small):
        acc = Alrescha.from_matrix(KernelType.SPMV, spd_small)
        x = np.ones(17)
        x[0] = np.nan
        y, _ = acc.run_spmv(x)
        assert np.isnan(y).any()

    def test_inf_input_does_not_crash_bfs(self, random_digraph):
        at = random_digraph.T.tocsr().copy()
        at.data = np.ones_like(at.data)
        acc = Alrescha.from_matrix(KernelType.BFS, at)
        dist = np.full(60, np.inf)  # no source at all
        new, _ = acc.run_bfs_pass(dist)
        assert np.isinf(new).all()


class TestOperandShapeErrors:
    @pytest.mark.parametrize("kernel,method,args", [
        (KernelType.SPMV, "run_spmv", (np.zeros(5),)),
        (KernelType.BFS, "run_bfs_pass", (np.zeros(5),)),
        (KernelType.SSSP, "run_sssp_pass", (np.zeros(5),)),
    ])
    def test_wrong_length_operands(self, spd_small, kernel, method, args):
        matrix = np.abs(spd_small)  # non-negative weights for sssp
        acc = Alrescha.from_matrix(kernel, matrix)
        with pytest.raises(SimulationError):
            getattr(acc, method)(*args)

    def test_pr_operand_mismatch(self, spd_small):
        acc = Alrescha.from_matrix(KernelType.PAGERANK, np.abs(spd_small))
        with pytest.raises(SimulationError):
            acc.run_pr_pass(np.zeros(17), np.zeros(5))


class TestValidationHarness:
    def test_validate_smoke(self):
        from repro.analysis import validate
        report = validate(scale=0.03,
                          datasets=["stencil27", "Youtube"])
        assert report.passed
        assert report.n_passed == len(report.cases) > 0
        assert "ok" in report.summary()

    def test_validation_detects_broken_hardware(self):
        """A mis-configured engine (too-narrow ALU row) fails fast."""
        with pytest.raises(ReproError):
            AlreschaConfig(omega=16, n_alus=8).make_fcu()
