"""Tests for the Figure 9 configurable-switch interconnect model."""

import pytest

from repro.core import (
    CONFIGURATIONS,
    ConfigurableSwitch,
    DataPathType,
    switch_distance,
)
from repro.core.switch import UNITS, SwitchConfiguration, _conn
from repro.errors import ReconfigurationError


class TestConfigurations:
    def test_every_datapath_has_a_configuration(self):
        assert set(CONFIGURATIONS) == set(DataPathType)

    def test_endpoints_are_known_units(self):
        for config in CONFIGURATIONS.values():
            for src, dst in config.connections:
                assert src in UNITS
                assert dst in UNITS

    def test_all_paths_stream_matrix_operand(self):
        """Every data path wires the A-FIFO into the ALU row (the
        fixed streaming input of the FCU)."""
        for config in CONFIGURATIONS.values():
            assert ("fifo_a", "alu_in") in config.connections

    def test_dsymgs_has_forward_path(self):
        """Figure 9b/10: the fresh x_j^t shifts back into the operand
        register — the defining connection of the dependent data path."""
        conns = CONFIGURATIONS[DataPathType.D_SYMGS].connections
        assert ("pe_div", "forward_path") in conns
        assert ("forward_path", "alu_vec_in") in conns
        assert ("link_stack", "pe_add") in conns

    def test_only_dsymgs_uses_forward_path(self):
        for dp, config in CONFIGURATIONS.items():
            uses = any("forward_path" in conn
                       for conn in config.connections)
            assert uses == (dp is DataPathType.D_SYMGS)

    def test_dpr_divides(self):
        conns = CONFIGURATIONS[DataPathType.D_PR].connections
        assert ("cache_port1", "pe_div") in conns
        assert ("cache_port2", "pe_div") in conns

    def test_min_paths_share_configuration_shape(self):
        bfs = CONFIGURATIONS[DataPathType.D_BFS].connections
        sssp = CONFIGURATIONS[DataPathType.D_SSSP].connections
        assert bfs == sssp  # identical wiring; the ALU op differs

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ReconfigurationError):
            _conn(("fifo_a", "warp_scheduler"))


class TestDistances:
    def test_distance_symmetric(self):
        assert switch_distance(DataPathType.GEMV, DataPathType.D_SYMGS) \
            == switch_distance(DataPathType.D_SYMGS, DataPathType.GEMV)

    def test_self_distance_zero(self):
        for dp in DataPathType:
            assert switch_distance(dp, dp) == 0

    def test_gemv_dsymgs_is_a_big_switch(self):
        """The SymGS transition rewires most of the RCU — exactly why
        the drain window matters."""
        assert switch_distance(DataPathType.GEMV,
                               DataPathType.D_SYMGS) >= 8

    def test_bfs_sssp_is_free(self):
        assert switch_distance(DataPathType.D_BFS,
                               DataPathType.D_SSSP) == 0

    def test_toggles_from_none_is_full_install(self):
        config = CONFIGURATIONS[DataPathType.GEMV]
        assert config.toggles_from(None) == len(config.connections)


class TestConfigurableSwitch:
    def test_install_counts_toggles(self):
        sw = ConfigurableSwitch()
        first = sw.install(DataPathType.GEMV)
        assert first == len(CONFIGURATIONS[DataPathType.GEMV].connections)
        second = sw.install(DataPathType.D_SYMGS)
        assert second == switch_distance(DataPathType.GEMV,
                                         DataPathType.D_SYMGS)
        assert sw.total_toggles == first + second
        assert sw.installs == 2

    def test_reinstall_is_free(self):
        sw = ConfigurableSwitch()
        sw.install(DataPathType.GEMV)
        assert sw.install(DataPathType.GEMV) == 0
        assert sw.installs == 1

    def test_history_recorded(self):
        sw = ConfigurableSwitch()
        sw.install(DataPathType.GEMV)
        sw.install(DataPathType.D_PR)
        assert [dp for dp, _ in sw.history] == [
            DataPathType.GEMV, DataPathType.D_PR
        ]

    def test_unknown_datapath_rejected(self):
        sw = ConfigurableSwitch()
        with pytest.raises(ReconfigurationError):
            sw.install("gemv")


class TestSwitchEnergyCoupling:
    def test_symgs_sweep_counts_interconnect_toggles(self, spd_medium,
                                                     rng):
        """A SymGS sweep's switch_toggle counter equals the sum of
        Figure 9 interconnect differences along its walk."""
        import numpy as np
        from repro.core import Alrescha, KernelType

        acc = Alrescha.from_matrix(KernelType.SYMGS, spd_medium)
        _x, report = acc.run_symgs_sweep(rng.normal(size=70),
                                         np.zeros(70))
        toggles = report.counters.get("switch_toggle")
        d = switch_distance(DataPathType.GEMV, DataPathType.D_SYMGS)
        # At least one full install plus one cross-switch, and every
        # subsequent switch contributes exactly d toggles.
        first_install = min(
            len(CONFIGURATIONS[DataPathType.GEMV].connections),
            len(CONFIGURATIONS[DataPathType.D_SYMGS].connections),
        )
        assert toggles >= first_install + d
        assert (toggles - first_install) % d == 0 or (
            toggles - len(
                CONFIGURATIONS[DataPathType.D_SYMGS].connections)
        ) % d == 0 or (
            toggles - len(
                CONFIGURATIONS[DataPathType.GEMV].connections)
        ) % d == 0
