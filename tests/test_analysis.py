"""Tests for the analysis layer: tables, comparison data, ablations."""

import numpy as np
import pytest

from repro.analysis import (
    KERNEL_DATAPATH_MAPPING,
    TABLE1,
    TABLE2,
    arithmetic_mean,
    block_size_sweep,
    geometric_mean,
    reconfiguration_ablation,
    render_series,
    render_table,
    reordering_ablation,
    smoother_ablation,
)
from repro.core import KernelType, convert
from repro.datasets import stencil27


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_ignores_nonpositive(self):
        assert geometric_mean([2.0, 0.0, -1.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0


class TestRendering:
    def test_render_table_aligns(self):
        text = render_table(["name", "value"],
                            [["a", 1.5], ["bb", 22.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "1.50" in text
        assert "22.25" in text

    def test_render_table_handles_nan_and_big(self):
        text = render_table(["v"], [[float("nan")], [1e9], [0.0001]])
        assert "-" in text
        assert "1e+09" in text

    def test_render_series(self):
        text = render_series({"a": {"x": 1.0}, "b": {"x": 2.0}})
        assert "dataset" in text
        assert "x" in text


class TestPaperTables:
    def test_table1_covers_all_kernels(self):
        assert set(TABLE1) == {"symgs", "spmv", "pagerank", "bfs", "sssp"}

    def test_table1_matches_kernel_mapping(self):
        for kernel, dp in KERNEL_DATAPATH_MAPPING.items():
            assert dp.value in TABLE1[kernel.value]["dense_datapaths"]

    def test_table1_matches_emitted_datapaths(self, spd_medium):
        conv = convert(KernelType.SYMGS, spd_medium, omega=8)
        emitted = {e.dp.value for e in conv.table}
        assert emitted == set(TABLE1["symgs"]["dense_datapaths"])

    def test_table2_alrescha_unique_claims(self):
        alr = TABLE2["alrescha"]
        assert alr["multi_kernel"]
        assert alr["no_metadata_transfer"]
        assert alr["reconfigurable"]
        for name, row in TABLE2.items():
            if name != "alrescha":
                assert not row["multi_kernel"]
                assert not row["no_metadata_transfer"]


class TestAblations:
    @pytest.fixture(scope="class")
    def matrix(self):
        return stencil27(6, 6, 6)

    def test_block_size_sweep_trade_off(self, matrix):
        sweep = block_size_sweep(matrix, omegas=[8, 16, 32])
        # Bigger blocks -> fewer table entries but more streamed padding.
        assert sweep[8]["table_entries"] > sweep[32]["table_entries"]
        assert sweep[8]["streamed_slots"] <= sweep[32]["streamed_slots"]
        for omega in (8, 16, 32):
            assert 0.0 < sweep[omega]["block_density"] <= 1.0

    def test_reordering_ablation(self, matrix):
        result = reordering_ablation(matrix)
        assert result["natural"]["sweep_cycles"] >= \
            result["reordered"]["sweep_cycles"]
        # Functional result identical either way.
        assert result["natural"]["checksum"] == pytest.approx(
            result["reordered"]["checksum"])

    def test_reconfiguration_ablation(self, matrix):
        result = reconfiguration_ablation(matrix)
        assert result["hidden"]["exposed_reconfig_cycles"] == 0.0
        assert result["exposed"]["exposed_reconfig_cycles"] > 0.0
        assert result["exposed"]["sweep_cycles"] > \
            result["hidden"]["sweep_cycles"]

    def test_smoother_ablation_ordering(self):
        a = stencil27(5, 5, 5)
        result = smoother_ablation(a, tol=1e-8, max_iter=400)
        assert result["symgs"]["iterations"] <= \
            result["jacobi"]["iterations"]
        assert result["symgs"]["iterations"] < result["none"]["iterations"]
